//! End-to-end keep-alive tests: many requests over one connection, and raw
//! pipelined requests on a single socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use lbs_server::{HttpClient, Scheduler, SchedulerConfig, Server, ServerState};
use serde::Value;

fn start_server() -> Server {
    let state = ServerState::new(Scheduler::new(SchedulerConfig::default()));
    Server::start("127.0.0.1:0", state).expect("bind ephemeral port")
}

#[test]
fn many_requests_reuse_one_connection() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut client = HttpClient::new(&addr);
    for _ in 0..10 {
        let (status, body) = client.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200, "{body}");
        let (status, _) = client.request("GET", "/stats", None).expect("stats");
        assert_eq!(status, 200);
    }

    // A full submit → poll → result round trip over the same connection.
    let body = r#"{"scenario":{"id":"ka","seed":11,
        "dataset":{"model":"uniform","size":40},
        "interface":{"kind":"lr","k":5},
        "aggregate":{"kind":"count"},
        "estimator":{"algorithm":"lr","budget":80}}}"#;
    let (status, reply) = client.request("POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(status, 201, "{reply}");
    let reply: Value = serde_json::from_str(&reply).expect("submit reply");
    let job_id = match reply.get("job_id") {
        Some(Value::U64(n)) => *n,
        other => panic!("job_id missing: {other:?}"),
    };
    let (status, result) = client
        .request("GET", &format!("/jobs/{job_id}/result?wait_ms=60000"), None)
        .expect("result");
    assert_eq!(status, 200, "{result}");

    assert_eq!(
        client.connections_opened(),
        1,
        "every request should have reused the first keep-alive connection \
         ({} requests sent)",
        client.requests_sent()
    );
    assert_eq!(client.requests_sent(), 22);

    let state = server.state();
    state.request_shutdown();
    server.join();
}

#[test]
fn pipelined_requests_on_one_socket() {
    let server = start_server();
    let addr = server.addr().to_string();

    // Two requests written back to back before reading anything: the
    // connection parses them in order from one buffer and answers both.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let one = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    stream
        .write_all(format!("{one}{one}").as_bytes())
        .expect("write pipelined pair");

    let mut seen = Vec::new();
    let mut scratch = [0u8; 4096];
    while String::from_utf8_lossy(&seen)
        .matches("HTTP/1.1 200")
        .count()
        < 2
    {
        let n = stream.read(&mut scratch).expect("read responses");
        assert!(n > 0, "server closed before answering both requests");
        seen.extend_from_slice(&scratch[..n]);
    }

    let state = server.state();
    state.request_shutdown();
    server.join();
}
