//! End-to-end test of the HTTP front-end: a real `TcpListener` server on an
//! ephemeral loopback port, driven through the same [`http_request`] client
//! that `repro client` uses.

use lbs_server::{http_request, Scheduler, SchedulerConfig, Server, ServerState};
use serde::Value;

fn scenario_json(id: &str, seed: u64, budget: u64) -> String {
    format!(
        r#"{{"id":"{id}","seed":{seed},
            "dataset":{{"model":"uniform","size":50}},
            "interface":{{"kind":"lr","k":5}},
            "aggregate":{{"kind":"count"}},
            "estimator":{{"algorithm":"lr","budget":{budget}}}}}"#
    )
}

fn get_u64(value: &Value, key: &str) -> u64 {
    match value.get(key) {
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) => *n as u64,
        Some(Value::F64(n)) => *n as u64,
        other => panic!("field {key} missing or non-numeric: {other:?}"),
    }
}

#[test]
fn submit_poll_result_cancel_over_real_sockets() {
    let state = ServerState::new(Scheduler::new(SchedulerConfig::default()));
    let server = Server::start("127.0.0.1:0", state).expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Health check.
    let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("true"));

    // Submit a small job and long-poll its result.
    let body = format!(
        r#"{{"tenant":"e2e","scenario":{}}}"#,
        scenario_json("http_roundtrip", 3, 120)
    );
    let (status, reply) = http_request(&addr, "POST", "/jobs", Some(&body)).unwrap();
    assert_eq!(status, 201, "{reply}");
    let reply: Value = serde_json::from_str(&reply).unwrap();
    let job_id = get_u64(&reply, "job_id");

    let (status, result) = http_request(
        &addr,
        "GET",
        &format!("/jobs/{job_id}/result?wait_ms=60000"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{result}");
    let result: Value = serde_json::from_str(&result).unwrap();
    assert_eq!(
        result.get("status"),
        Some(&Value::Str("Done".to_string())),
        "{result:?}"
    );
    let estimate = result.get("estimate").expect("final estimate present");
    assert!(get_u64(estimate, "query_cost") >= 120);
    assert!(get_u64(estimate, "samples") > 0);

    // Poll endpoint agrees.
    let (status, poll) = http_request(&addr, "GET", &format!("/jobs/{job_id}"), None).unwrap();
    assert_eq!(status, 200);
    let poll: Value = serde_json::from_str(&poll).unwrap();
    assert_eq!(poll.get("tenant"), Some(&Value::Str("e2e".to_string())));
    let snapshot = poll.get("snapshot").expect("snapshot present");
    assert!(get_u64(snapshot, "samples") > 0);

    // Submit a long job and cancel it.
    let body = format!(
        r#"{{"scenario":{}}}"#,
        scenario_json("http_cancel", 5, 1_000_000)
    );
    let (status, reply) = http_request(&addr, "POST", "/jobs", Some(&body)).unwrap();
    assert_eq!(status, 201);
    let reply: Value = serde_json::from_str(&reply).unwrap();
    let cancel_id = get_u64(&reply, "job_id");
    // Give the ticker a moment so the partial estimate is non-empty.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let (status, reply) =
        http_request(&addr, "DELETE", &format!("/jobs/{cancel_id}"), None).unwrap();
    assert_eq!(status, 200);
    assert!(reply.contains("true"), "{reply}");

    // Stats reflect both jobs.
    let (status, stats) = http_request(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&stats).unwrap();
    assert_eq!(get_u64(&stats, "submitted"), 2);

    // Error paths: bad body, unknown job, unknown route.
    let (status, _) = http_request(&addr, "POST", "/jobs", Some("{not json")).unwrap();
    assert_eq!(status, 400);
    let (status, _) = http_request(&addr, "GET", "/jobs/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    // Clean shutdown over the wire.
    let (status, _) = http_request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    server.join();
}
