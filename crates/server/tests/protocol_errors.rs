//! Raw-socket tests of the protocol error paths: `413 Payload Too Large`
//! for oversized declared bodies, `408 Request Timeout` for a request that
//! stalls mid-headers, and the silent idle-connection close.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use lbs_server::{Scheduler, SchedulerConfig, Server, ServerConfig, ServerState};

fn start_server(config: ServerConfig) -> Server {
    let state = ServerState::new(Scheduler::new(SchedulerConfig::default()));
    Server::start_with_config("127.0.0.1:0", state, config).expect("bind ephemeral port")
}

/// Reads until EOF (the server closes after an error response) and returns
/// the raw response text.
fn read_to_close(stream: &mut TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut raw = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&scratch[..n]),
            Err(e) => panic!("read failed before close: {e}"),
        }
    }
    String::from_utf8_lossy(&raw).into_owned()
}

#[test]
fn oversized_body_draws_413_from_the_headers_alone() {
    let server = start_server(ServerConfig {
        max_body_bytes: 512,
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // Declare a body far over the limit but never send it: the server must
    // reject from Content-Length alone instead of buffering the payload.
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n")
        .expect("write head");
    let response = read_to_close(&mut stream);
    assert!(
        response.starts_with("HTTP/1.1 413 "),
        "expected 413, got: {response}"
    );
    assert!(response.contains("Connection: close"), "{response}");

    let state = server.state();
    state.request_shutdown();
    server.join();
}

#[test]
fn stalled_headers_draw_408_after_the_header_timeout() {
    let server = start_server(ServerConfig {
        header_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // A request that starts and then stalls mid-request-line.
    stream.write_all(b"GET /heal").expect("write partial");
    let response = read_to_close(&mut stream);
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "expected 408, got: {response}"
    );
    assert!(response.contains("Connection: close"), "{response}");

    let state = server.state();
    state.request_shutdown();
    server.join();
}

#[test]
fn idle_connections_are_closed_silently() {
    let server = start_server(ServerConfig {
        keep_alive_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();

    // A connection that never sends a byte is not owed an error response:
    // it is reaped silently once the keep-alive timeout passes.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let response = read_to_close(&mut stream);
    assert!(response.is_empty(), "idle close wrote bytes: {response}");

    let state = server.state();
    state.request_shutdown();
    server.join();
}
