//! A lightweight Rust scanner: good enough to separate identifiers,
//! punctuation, and literals from comments and strings, which is all the
//! rule engine needs.
//!
//! This is deliberately *not* a full Rust lexer. It understands exactly the
//! constructs that would otherwise produce false positives for token
//! matching — line comments, (nested) block comments, string/char/byte
//! literals, raw strings with any number of `#`s, raw identifiers, and the
//! lifetime-versus-char-literal ambiguity — and treats everything else as
//! single-character punctuation (with `::` kept as one token because rules
//! match paths like `Instant::now`).
//!
//! The scanner also extracts `// lbs-lint: allow(<rule>, reason = "...")`
//! suppression comments, recording the code line each one targets: the same
//! line for a trailing comment, the next line that holds any code token for
//! a comment on its own line.

/// What kind of lexical element a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unsafe`, ...).
    Ident,
    /// Punctuation. Single characters, except `::` which is one token.
    Punct,
    /// A string, raw-string, byte-string, char, or numeric literal. For
    /// string-like literals `text` is the raw source slice including quotes,
    /// so rules can inspect format strings.
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexical token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// A parsed `// lbs-lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id named inside `allow(...)`.
    pub rule: String,
    /// The mandatory free-text reason.
    pub reason: String,
    /// Line of the comment itself (1-based).
    pub comment_line: u32,
    /// The code line this suppression applies to. For a trailing comment
    /// this is `comment_line`; for a standalone comment it is the next line
    /// that contains any token (`None` if the file ends first).
    pub target_line: Option<u32>,
}

/// A `lbs-lint:` comment that could not be parsed as a valid annotation.
#[derive(Debug, Clone)]
pub struct MalformedSuppression {
    /// Line of the comment (1-based).
    pub line: u32,
    /// Why the annotation was rejected.
    pub detail: String,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All code tokens, in source order.
    pub tokens: Vec<Token>,
    /// All well-formed suppression annotations, with resolved target lines.
    pub suppressions: Vec<Suppression>,
    /// `lbs-lint:` comments that failed to parse. These are hard errors in
    /// deny mode: a typo in an annotation must not silently disable it.
    pub malformed: Vec<MalformedSuppression>,
}

/// The marker that introduces a suppression comment.
const MARKER: &str = "lbs-lint:";

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Scanner {
    fn new(src: &str) -> Self {
        Scanner {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scans `src` into tokens and suppression annotations.
pub fn lex(src: &str) -> LexOutput {
    let mut s = Scanner::new(src);
    let mut out = LexOutput::default();
    // (comment_line, rule, reason, had_code_before_on_line)
    let mut pending: Vec<(u32, String, String, bool)> = Vec::new();
    let mut last_token_line: u32 = 0;

    while let Some(c) = s.peek(0) {
        let line = s.line;
        match c {
            c if c.is_whitespace() => {
                s.bump();
            }
            '/' if s.peek(1) == Some('/') => {
                let start = s.pos;
                while let Some(c) = s.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    s.bump();
                }
                let comment: String = s.chars[start..s.pos].iter().collect();
                scan_suppression_comment(
                    &comment,
                    line,
                    last_token_line == line,
                    &mut pending,
                    &mut out.malformed,
                );
            }
            '/' if s.peek(1) == Some('*') => {
                s.bump();
                s.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some('/'), Some('*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => {
                let text = scan_string(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line,
                });
                last_token_line = line;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): after the
                // quote, an identifier char NOT followed by a closing quote
                // means lifetime.
                let is_lifetime = match (s.peek(1), s.peek(2)) {
                    (Some(c1), next) if is_ident_start(c1) => next != Some('\''),
                    _ => false,
                };
                if is_lifetime {
                    s.bump(); // '
                    let start = s.pos;
                    while let Some(c) = s.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        s.bump();
                    }
                    let name: String = s.chars[start..s.pos].iter().collect();
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: name,
                        line,
                    });
                } else {
                    let text = scan_char(&mut s);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text,
                        line,
                    });
                }
                last_token_line = line;
            }
            c if c.is_ascii_digit() => {
                let text = scan_number(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line,
                });
                last_token_line = line;
            }
            c if is_ident_start(c) => {
                // `r"`/`r#"` raw strings, `b"` byte strings, `br#"`, `b'`,
                // and `r#ident` raw identifiers all start like identifiers.
                if let Some(text) = try_scan_prefixed_literal(&mut s) {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text,
                        line,
                    });
                    last_token_line = line;
                    continue;
                }
                let raw_ident = c == 'r' && s.peek(1) == Some('#');
                if raw_ident {
                    s.bump();
                    s.bump();
                }
                let start = s.pos;
                while let Some(c) = s.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    s.bump();
                }
                let text: String = s.chars[start..s.pos].iter().collect();
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                });
                last_token_line = line;
            }
            ':' if s.peek(1) == Some(':') => {
                s.bump();
                s.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                last_token_line = line;
            }
            other => {
                s.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: other.to_string(),
                    line,
                });
                last_token_line = line;
            }
        }
    }

    // Resolve standalone suppressions to the next line holding a token.
    for (comment_line, rule, reason, trailing) in pending {
        let target_line = if trailing {
            Some(comment_line)
        } else {
            out.tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment_line)
        };
        out.suppressions.push(Suppression {
            rule,
            reason,
            comment_line,
            target_line,
        });
    }
    out.suppressions
        .sort_by_key(|sup| (sup.comment_line, sup.rule.clone()));
    out
}

fn scan_string(s: &mut Scanner) -> String {
    let start = s.pos;
    s.bump(); // opening quote
    while let Some(c) = s.bump() {
        match c {
            '\\' => {
                s.bump();
            }
            '"' => break,
            _ => {}
        }
    }
    s.chars[start..s.pos].iter().collect()
}

fn scan_char(s: &mut Scanner) -> String {
    let start = s.pos;
    s.bump(); // opening quote
    while let Some(c) = s.bump() {
        match c {
            '\\' => {
                s.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
    s.chars[start..s.pos].iter().collect()
}

/// Numbers: digits/underscores, a decimal point only when followed by a
/// digit (so `a.0.partial_cmp` never swallows the method name), and a
/// trailing alphanumeric type suffix / radix body (`u64`, `f32`, `x1f`).
fn scan_number(s: &mut Scanner) -> String {
    let start = s.pos;
    s.bump();
    loop {
        match s.peek(0) {
            Some(c) if c.is_ascii_digit() || c == '_' => {
                s.bump();
            }
            Some('.') if s.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                s.bump();
            }
            Some(c) if c.is_alphanumeric() => {
                // Type suffix or radix letters; also eats the `e` of an
                // exponent (the sign and digits then lex as separate tokens,
                // which is harmless for rule matching).
                s.bump();
            }
            _ => break,
        }
    }
    s.chars[start..s.pos].iter().collect()
}

/// Raw strings (`r"..."`, `r#"..."#`), byte strings (`b"..."`, `br#"..."#`),
/// and byte chars (`b'x'`). Returns `None` when the cursor is on a plain
/// identifier.
fn try_scan_prefixed_literal(s: &mut Scanner) -> Option<String> {
    let c0 = s.peek(0)?;
    let (hash_scan_from, quote_kind) = match (c0, s.peek(1)) {
        ('r', Some('"')) | ('r', Some('#')) => (1, '"'),
        ('b', Some('"')) => (1, '"'),
        ('b', Some('\'')) => (1, '\''),
        ('b', Some('r')) => (2, '"'),
        _ => return None,
    };
    // Count `#`s between the prefix and the quote; bail out if what follows
    // is not a quote (then it's `r#ident` or an ordinary identifier).
    let mut hashes = 0usize;
    while s.peek(hash_scan_from + hashes) == Some('#') {
        hashes += 1;
    }
    if s.peek(hash_scan_from + hashes) != Some(quote_kind) {
        return None;
    }
    if quote_kind == '\'' {
        // b'x' — reuse the char scanner after consuming the prefix.
        let start = s.pos;
        s.bump(); // b
        let _ = scan_char(s);
        return Some(s.chars[start..s.pos].iter().collect());
    }
    let raw = hashes > 0 || c0 == 'r' || s.peek(1) == Some('r');
    let start = s.pos;
    for _ in 0..hash_scan_from + hashes + 1 {
        s.bump(); // prefix, hashes, opening quote
    }
    if raw {
        // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
        'outer: while let Some(c) = s.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if s.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    s.bump();
                }
                break;
            }
        }
    } else {
        // b"...": ordinary escapes.
        while let Some(c) = s.bump() {
            match c {
                '\\' => {
                    s.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }
    Some(s.chars[start..s.pos].iter().collect())
}

/// Parses a line comment for the `lbs-lint:` marker. Well-formed allows are
/// queued in `pending`; marker comments that fail to parse are recorded as
/// malformed (a hard error in deny mode — a typo must not disable a
/// suppression silently).
fn scan_suppression_comment(
    comment: &str,
    line: u32,
    trailing: bool,
    pending: &mut Vec<(u32, String, String, bool)>,
    malformed: &mut Vec<MalformedSuppression>,
) {
    let body = comment.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix(MARKER) else {
        // Catch near-misses like `lbs-lint allow(...)` so they do not pass
        // silently as prose.
        if body.starts_with("lbs-lint") {
            malformed.push(MalformedSuppression {
                line,
                detail: format!("annotation must start with `{MARKER}`"),
            });
        }
        return;
    };
    match parse_allow(rest.trim()) {
        Ok((rule, reason)) => pending.push((line, rule, reason, trailing)),
        Err(detail) => malformed.push(MalformedSuppression { line, detail }),
    }
}

/// Parses `allow(<rule>, reason = "...")`, returning `(rule, reason)`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let rest = rest
        .strip_suffix(')')
        .ok_or_else(|| "expected closing `)`".to_string())?;
    let (rule, rest) = rest
        .split_once(',')
        .ok_or_else(|| "expected `, reason = \"...\"` after the rule id".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return Err(format!("`{rule}` is not a valid rule id"));
    }
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("reason")
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('=')
        .ok_or_else(|| "expected `=` after `reason`".to_string())?
        .trim();
    let reason = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashSet "quoted" inside raw"#;
            let c = 'H';
            let real = Real::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet"));
        assert!(ids.iter().any(|i| i == "Real"));
    }

    #[test]
    fn tuple_field_method_calls_are_not_numbers() {
        let toks = lex("a.0.partial_cmp(&b.0)");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "partial_cmp"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn numeric_suffixes_and_ranges() {
        let toks = lex("for i in 0..8u64 { let x = 1.5e3; }");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "i"));
        // The `..` must not be folded into the numbers.
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Punct && t.text == ".")
                .count(),
            2
        );
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "let m = HashMap::new(); // lbs-lint: allow(hashmap-iter, reason = \"never iterated\")\n";
        let out = lex(src);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].target_line, Some(1));
        assert_eq!(out.suppressions[0].rule, "hashmap-iter");
        assert_eq!(out.suppressions[0].reason, "never iterated");
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src = "\n// lbs-lint: allow(ambient-time, reason = \"wall-clock stop\")\n// another comment\nlet t = Instant::now();\n";
        let out = lex(src);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].comment_line, 2);
        assert_eq!(out.suppressions[0].target_line, Some(4));
    }

    #[test]
    fn malformed_marker_comments_are_reported() {
        for bad in [
            "// lbs-lint: allow(hashmap-iter)",                  // no reason
            "// lbs-lint: allow(hashmap-iter, reason = )",       // unquoted
            "// lbs-lint: allow(, reason = \"x\")",              // empty rule
            "// lbs-lint: allow(HashMap, reason = \"x\")",       // bad id chars
            "// lbs-lint: deny(hashmap-iter)",                   // unknown verb
            "// lbs-lint allow(hashmap-iter, reason = \"x\")",   // missing colon
            "// lbs-lint: allow(hashmap-iter, reason = \"  \")", // blank reason
        ] {
            let out = lex(bad);
            assert_eq!(out.malformed.len(), 1, "not rejected: {bad}");
            assert!(out.suppressions.is_empty(), "accepted: {bad}");
        }
    }

    #[test]
    fn raw_and_byte_strings() {
        let out = lex(
            r##"let a = br#"unsafe"#; let b = b"unsafe"; let c = b'u'; let d = r#struct_like;"##,
        );
        assert!(!out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unsafe"));
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "struct_like"));
    }
}
