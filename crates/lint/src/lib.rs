//! `lbs-lint` — the workspace's determinism & float-safety static analysis.
//!
//! The reproduction's core promise is a *determinism contract*: estimates
//! are bit-identical at any thread count, across checkpoint/resume cuts,
//! with caches on or off, and served == batch. Two full PRs were spent
//! hand-hunting violations of it (`HashMap` iteration order in PR 2,
//! `partial_cmp` float ranking in PR 4). This crate turns those bug classes
//! into named, machine-checked rules enforced in CI.
//!
//! Design constraints:
//!
//! - **Token-level, not regex.** A lightweight scanner ([`lexer`])
//!   classifies comments, strings (incl. raw/byte strings), char literals
//!   vs lifetimes, and identifiers, so prose about a hazard never counts as
//!   one.
//! - **Dependency-free.** Not even the vendored stand-ins: the lint builds
//!   first and fastest in CI, before anything it checks.
//! - **Suppressions are visible and audited.** The only way to exempt a
//!   line is `// lbs-lint: allow(<rule>, reason = "...")` — parsed,
//!   counted, reported, and itself checked for staleness (an allow whose
//!   rule id is unknown or whose line no longer has the finding fails deny
//!   mode).
//!
//! See [`rules::RULES`] for the rule table and `lbs-lint --explain <rule>`
//! for long-form rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{collect_files, lint_source, lint_tree, to_json, Finding, LintReport};
pub use rules::{rule_by_id, Rule, RULES};
