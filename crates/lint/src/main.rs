//! CLI for the workspace determinism lint.
//!
//! ```text
//! cargo run -p lbs-lint --               # report findings (exit 0)
//! cargo run -p lbs-lint -- --deny       # exit 1 on findings/stale allows
//! cargo run -p lbs-lint -- --deny --json
//! cargo run -p lbs-lint -- --explain float-ord
//! cargo run -p lbs-lint -- --list
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lbs_lint::{engine, rules};

struct Options {
    deny: bool,
    json: bool,
    root: PathBuf,
    explain: Option<String>,
    list: bool,
}

fn usage() -> &'static str {
    "lbs-lint: workspace determinism & float-safety static analysis\n\
     \n\
     USAGE: lbs-lint [--deny] [--json] [--root <dir>] [--explain <rule>] [--list]\n\
     \n\
     --deny           exit non-zero on any unsuppressed finding or stale\n\
                      suppression (the CI mode)\n\
     --json           emit the machine-readable report on stdout\n\
     --root <dir>     workspace root to scan (default: current directory)\n\
     --explain <rule> print the rationale and fix guidance for one rule\n\
     --list           list all rules with one-line summaries\n\
     \n\
     Suppression syntax (inline, counted, stale-checked):\n\
         // lbs-lint: allow(<rule>, reason = \"why this line is safe\")"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        root: PathBuf::from("."),
        explain: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--list" => opts.list = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule id")?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for rule in rules::RULES {
            println!("{:<18} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(id) = &opts.explain {
        let Some(rule) = rules::rule_by_id(id) else {
            eprintln!("error: no such rule `{id}`; known rules:");
            for rule in rules::RULES {
                eprintln!("  {:<18} {}", rule.id, rule.summary);
            }
            return ExitCode::from(2);
        };
        println!("{} — {}\n", rule.id, rule.summary);
        println!("{}\n", rule.explain);
        println!("fix hint: {}", rule.hint);
        if !rule.allowed_path_suffixes.is_empty() {
            println!("\npath-allowlisted modules:");
            for p in rule.allowed_path_suffixes {
                println!("  {p}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = match engine::lint_tree(&opts.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", engine::to_json(&report, opts.deny));
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            println!("    hint: {}", f.hint);
        }
        for s in &report.stale {
            println!(
                "{}:{}: [stale-suppression/{}] {}",
                s.file,
                s.line,
                s.kind.as_str(),
                s.detail
            );
        }
        println!(
            "lbs-lint: {} finding(s), {} suppressed, {} stale suppression(s) across {} files{}",
            report.findings.len(),
            report.suppressed.len(),
            report.stale.len(),
            report.files_scanned,
            if opts.deny { " (deny mode)" } else { "" }
        );
    }

    if opts.deny && report.deny_fails() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
