//! The determinism-contract rules.
//!
//! Every rule is a token-level pattern over the output of [`crate::lexer`].
//! Rules never look inside comments or string literals (the lexer already
//! classified those), so prose about a hazard never trips the lint — only
//! code does.

use crate::lexer::{Token, TokenKind};

/// A single raw finding produced by a rule, before suppression matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Id of the rule that fired.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the specific occurrence.
    pub message: String,
}

/// A named rule of the determinism contract.
pub struct Rule {
    /// Stable id, used in findings, suppressions, and `--explain`.
    pub id: &'static str,
    /// One-line summary shown in listings.
    pub summary: &'static str,
    /// The fix hint attached to every finding.
    pub hint: &'static str,
    /// Long-form documentation for `--explain`.
    pub explain: &'static str,
    /// Path suffixes (workspace-relative, `/`-separated) where the rule is
    /// switched off wholesale — e.g. dedicated timing modules for
    /// `ambient-time`. Everywhere else, exemptions must be inline
    /// annotations so they are visible, reasoned, and counted.
    pub allowed_path_suffixes: &'static [&'static str],
    /// When non-empty, the rule applies **only** to files whose path ends
    /// with one of these suffixes — the inverse of `allowed_path_suffixes`,
    /// for rules that police a specific hot module (e.g. `hot-path-alloc`)
    /// rather than the whole workspace.
    pub only_path_suffixes: &'static [&'static str],
    check: fn(&[Token]) -> Vec<RawFinding>,
}

impl Rule {
    /// Runs the rule over a token stream, honouring the path allow- and
    /// scope-lists.
    pub fn check(&self, rel_path: &str, tokens: &[Token]) -> Vec<RawFinding> {
        if self
            .allowed_path_suffixes
            .iter()
            .any(|suffix| rel_path.ends_with(suffix))
        {
            return Vec::new();
        }
        if !self.only_path_suffixes.is_empty()
            && !self
                .only_path_suffixes
                .iter()
                .any(|suffix| rel_path.ends_with(suffix))
        {
            return Vec::new();
        }
        (self.check)(tokens)
    }
}

/// The rule table, in the order findings are reported.
pub const RULES: &[Rule] = &[
    Rule {
        id: "hashmap-iter",
        summary: "HashMap/HashSet in workspace code (randomized iteration order)",
        hint: "use BTreeMap/BTreeSet (or sort before iterating); if the collection is \
               provably never iterated (membership/lookup only), annotate the line with \
               // lbs-lint: allow(hashmap-iter, reason = \"...\")",
        explain: "Iterating std::collections::HashMap or HashSet yields elements in an \
                  order that changes between processes (SipHash keys are randomized per \
                  run via RandomState). Any estimate, report, CSV, or scheduling decision \
                  derived from that order breaks the bit-identical determinism contract \
                  the estimators, sessions, and scheduler promise — this exact bug class \
                  was hand-fixed in PR 2 (History, explorer known-set, RankOracle \
                  companions). The rule flags every HashMap/HashSet type or constructor \
                  token outside `use` declarations, because whether a map is iterated is \
                  a global property a token scanner cannot prove; membership-only caches \
                  are fine and should carry an inline allow stating that invariant.",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[],
        check: check_hashmap_iter,
    },
    Rule {
        id: "float-ord",
        summary: "partial_cmp-based float comparison in comparators",
        hint: "use f64::total_cmp (total order, NaN-safe, deterministic); \
               .unwrap_or(Ordering::Equal) on partial_cmp makes the comparator \
               inconsistent and the sort implementation-defined",
        explain: "sort_by/max_by/min_by comparators built on partial_cmp are a trap: \
                  `.unwrap()` panics on NaN, and `.unwrap_or(Ordering::Equal)` silently \
                  produces an inconsistent comparator, making the sort order \
                  implementation-defined — the tie/NaN ranking bugs fixed by hand in \
                  PR 4. f64::total_cmp is a total order (IEEE 754 totalOrder), is \
                  identical to partial_cmp on the finite values real queries produce, \
                  and keeps every ranking deterministic. The rule flags every \
                  `partial_cmp` call token; defining `fn partial_cmp` for a PartialOrd \
                  impl is not flagged (delegate it to an Ord impl built on total_cmp).",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[],
        check: check_float_ord,
    },
    Rule {
        id: "ambient-time",
        summary: "Instant::now/SystemTime::now outside allowlisted timing modules",
        hint: "route wall-clock reads through the probe/report timing modules, or \
               annotate result-neutral uses with // lbs-lint: allow(ambient-time, \
               reason = \"...\") stating why no estimate depends on the value",
        explain: "Ambient wall-clock reads (std::time::Instant::now, SystemTime::now) \
                  make control flow depend on machine speed. On a result-affecting path \
                  (wave scheduling, early-stop, cache eviction) they silently break \
                  checkpoint/resume bit-identity and the served==batch contract: a run \
                  resumed on a slower machine would take a different branch. Timing \
                  belongs in the dedicated measurement modules (the bench report's \
                  wall-time probe, the server throughput probe), which are allowlisted; \
                  anywhere else the use must be annotated with a reason explaining why \
                  the value never feeds back into an estimate.",
        allowed_path_suffixes: &[
            "crates/bench/src/report.rs",
            "crates/server/src/probe.rs",
            "crates/server/src/loadtest.rs",
        ],
        only_path_suffixes: &[],
        check: check_ambient_time,
    },
    Rule {
        id: "ambient-rng",
        summary: "entropy-based RNG outside the seeded (root_seed, sample_index) plumbing",
        hint: "derive randomness from the seeded driver plumbing \
               (StdRng::seed_from_u64 over sample_seed(root_seed, sample_index)); \
               never draw from process entropy",
        explain: "All randomness in the workspace flows from an explicit \
                  (root_seed, sample_index) derivation so that every estimate is \
                  reproducible bit for bit at any thread count. Entropy sources — \
                  thread_rng, ThreadRng, SmallRng/StdRng::from_entropy, OsRng, \
                  getrandom, rand::random, or hasher RandomState — inject per-process \
                  nondeterminism that no seed can replay. The vendored rand subset \
                  deliberately ships no entropy constructor; this rule keeps it that \
                  way when code is written against upstream rand docs.",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[],
        check: check_ambient_rng,
    },
    Rule {
        id: "stray-seed-derivation",
        summary: "ad-hoc StdRng::seed_from_u64 inside estimator/session sampling code",
        hint: "derive per-sample and per-stratum seeds through the blessed helpers in \
               crates/core/src/driver.rs (sample_seed, stratum_seed) and let the \
               driver construct the StdRng; seeding an RNG inline in sampling code \
               creates a parallel seed scheme that silently drifts from the contract",
        explain: "Every RNG in the estimator pipeline is built from one derivation \
                  chain — sample_seed(root_seed, sample_index) for per-sample streams \
                  and stratum_seed(root_seed, stratum_id, stratum_count) for the \
                  per-stratum child sessions of the stratified combiner — so that \
                  estimates are bit-identical at any thread count, at any \
                  checkpoint/resume cut, and across the flat and stratified paths. \
                  A direct StdRng::seed_from_u64 call inside sampling code (the \
                  modules that define `sample_once` or `step_wave`) bypasses that \
                  chain: two strata or two samples can end up on correlated streams, \
                  and a refactor of the ad-hoc seed expression changes every \
                  committed reference number. The driver module, the one sanctioned \
                  home of the derivation, is allowlisted; test modules are exempt \
                  because fixture seeding does not feed the production chain.",
        allowed_path_suffixes: &["crates/core/src/driver.rs"],
        only_path_suffixes: &[],
        check: check_stray_seed_derivation,
    },
    Rule {
        id: "unsafe-block",
        summary: "`unsafe` outside vendor/",
        hint: "rewrite in safe Rust; every workspace crate carries \
               #![forbid(unsafe_code)], so this should be unreachable outside \
               generated or fixture code",
        explain: "The workspace promises memory safety and determinism with zero \
                  `unsafe` outside the vendored dependency stand-ins. Every crate \
                  backs this with #![forbid(unsafe_code)]; the lint re-checks it \
                  token-level so that the guarantee also covers code the compiler \
                  does not see (fixtures, doc snippets compiled elsewhere, cfg'd-out \
                  modules) and survives someone deleting the attribute.",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[],
        check: check_unsafe_block,
    },
    Rule {
        id: "nondet-debug-fmt",
        summary: "Debug-formatting ({:?}) in output-producing macros",
        hint: "format fields explicitly (Display, or iterate a sorted view); if the \
               value is an enum or ordered type whose Debug output is deterministic, \
               annotate with // lbs-lint: allow(nondet-debug-fmt, reason = \"...\")",
        explain: "`{:?}` on an unordered collection (HashMap, HashSet) prints elements \
                  in randomized iteration order, so a report, CSV, log line, or error \
                  string built with Debug formatting can differ between identical runs \
                  — poison for byte-identical committed artifacts. The rule flags \
                  Debug/pretty-Debug specs inside the output-producing macros \
                  (format!, print!, println!, eprint!, eprintln!, write!, writeln!); \
                  assert/panic messages are exempt because they only render on a path \
                  that already fails the run. Deterministic Debug impls (fieldless \
                  enums, Vec, BTreeMap) are safe and should carry an inline allow \
                  naming the type.",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[],
        check: check_nondet_debug_fmt,
    },
    Rule {
        id: "cache-key-float",
        summary: "raw f64 bit handling next to CacheKey (bypasses key canonicalization)",
        hint: "build answer-cache keys exclusively through CacheKey::for_query, which \
               canonicalizes -0.0 and NaN before hashing; never feed raw to_bits()/ \
               integer casts of query coordinates into a key",
        explain: "The answer cache's determinism rests on one invariant: every key is \
                  built by CacheKey::for_query, the single place that canonicalizes \
                  float payloads (-0.0 folds onto 0.0, every NaN onto the quiet NaN \
                  pattern) before the bits enter the BTreeMap order. Code that touches \
                  CacheKey while also converting floats to raw bits — f64::to_bits, \
                  f64::from_bits, or `as`-casts to integer types — is one refactor away \
                  from keying on uncanonicalized bits, where a -0.0 query point misses \
                  the 0.0 entry and two NaN-bearing points collide or diverge by sign \
                  bit. The rule therefore fires on those conversions only in files that \
                  name CacheKey; the cache module itself, whose constructor is the one \
                  sanctioned home of the conversion, is allowlisted.",
        allowed_path_suffixes: &["crates/service/src/cache.rs"],
        only_path_suffixes: &[],
        check: check_cache_key_float,
    },
    Rule {
        id: "hot-path-alloc",
        summary: "per-call heap allocation inside the cell-geometry hot modules",
        hint: "reuse a ClipScratch buffer (clear + extend) instead of allocating per \
               build; if the allocation escapes into the returned value or is \
               provably outside the per-sample loop, annotate the line with \
               // lbs-lint: allow(hot-path-alloc, reason = \"...\")",
        explain: "Every estimator sample funnels through the pruned cell constructions \
                  of crates/geom/src/cell_engine.rs and the enumerators of \
                  crates/geom/src/topk_cell.rs; a single Vec::new, vec![…], .to_vec() \
                  or .collect() in those loops turns into millions of allocator \
                  round-trips per run — the exact regression class the ClipScratch \
                  arena (crates/geom/src/scratch.rs) removed. The rule is scoped to \
                  the two hot modules (only_path_suffixes) because allocation is \
                  perfectly fine elsewhere; within them, every allocating idiom must \
                  either go through the arena or carry a reasoned allow (result \
                  ownership, cold setup path). Code after the #[cfg(test)] boundary \
                  is exempt, as the test module is the tail of the file by workspace \
                  convention. The counting-allocator smoke probe in the bench gate \
                  (`repro --alloc-smoke`) enforces the same budget dynamically; this \
                  rule catches offenders at review time, before they cost a bench \
                  run.",
        allowed_path_suffixes: &[],
        only_path_suffixes: &[
            "crates/geom/src/cell_engine.rs",
            "crates/geom/src/topk_cell.rs",
        ],
        check: check_hot_path_alloc,
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| {
        if t.kind == TokenKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| {
        if t.kind == TokenKind::Punct {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn check_hashmap_iter(tokens: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let mut in_use_decl = false;
    for t in tokens {
        match t.kind {
            TokenKind::Ident if t.text == "use" => in_use_decl = true,
            TokenKind::Punct if t.text == ";" => in_use_decl = false,
            TokenKind::Ident if !in_use_decl && (t.text == "HashMap" || t.text == "HashSet") => {
                findings.push(RawFinding {
                    rule: "hashmap-iter",
                    line: t.line,
                    message: format!("`{}` has a randomized iteration order", t.text),
                });
            }
            _ => {}
        }
    }
    findings
}

fn check_float_ord(tokens: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "partial_cmp" {
            continue;
        }
        // `fn partial_cmp` is a PartialOrd impl's required method name, not a
        // float comparison.
        if i > 0 && ident_at(tokens, i - 1) == Some("fn") {
            continue;
        }
        findings.push(RawFinding {
            rule: "float-ord",
            line: t.line,
            message: "`partial_cmp` used as a comparator (NaN-unsafe partial order)".to_string(),
        });
    }
    findings
}

fn check_ambient_time(tokens: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        let Some(ty) = ident_at(tokens, i) else {
            continue;
        };
        if (ty == "Instant" || ty == "SystemTime")
            && punct_at(tokens, i + 1) == Some("::")
            && ident_at(tokens, i + 2) == Some("now")
        {
            findings.push(RawFinding {
                rule: "ambient-time",
                line: tokens[i].line,
                message: format!("ambient wall-clock read `{ty}::now`"),
            });
        }
    }
    findings
}

const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

fn check_ambient_rng(tokens: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        let Some(id) = ident_at(tokens, i) else {
            continue;
        };
        if ENTROPY_IDENTS.contains(&id) {
            findings.push(RawFinding {
                rule: "ambient-rng",
                line: tokens[i].line,
                message: format!("entropy source `{id}`"),
            });
        } else if id == "rand"
            && punct_at(tokens, i + 1) == Some("::")
            && ident_at(tokens, i + 2) == Some("random")
        {
            findings.push(RawFinding {
                rule: "ambient-rng",
                line: tokens[i].line,
                message: "entropy source `rand::random`".to_string(),
            });
        }
    }
    findings
}

fn check_stray_seed_derivation(tokens: &[Token]) -> Vec<RawFinding> {
    // Gate: the hazard lives in the modules that draw estimator samples —
    // recognizable by their `sample_once`/`step_wave` entry points. Other
    // code (generators, fixtures, probes) seeds RNGs legitimately.
    if !tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && (t.text == "sample_once" || t.text == "step_wave"))
    {
        return Vec::new();
    }
    // Everything from the first `#[cfg(test)]` on is fixture seeding.
    let test_boundary = cfg_test_boundary(tokens);
    let mut findings = Vec::new();
    for i in 0..test_boundary {
        if ident_at(tokens, i) == Some("StdRng")
            && punct_at(tokens, i + 1) == Some("::")
            && ident_at(tokens, i + 2) == Some("seed_from_u64")
        {
            findings.push(RawFinding {
                rule: "stray-seed-derivation",
                line: tokens[i].line,
                message: "`StdRng::seed_from_u64` outside the blessed seed-derivation helpers"
                    .to_string(),
            });
        }
    }
    findings
}

fn check_unsafe_block(tokens: &[Token]) -> Vec<RawFinding> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == "unsafe")
        .map(|t| RawFinding {
            rule: "unsafe-block",
            line: t.line,
            message: "`unsafe` in workspace code".to_string(),
        })
        .collect()
}

/// Output-producing format macros. assert!/assert_eq!/panic! are exempt:
/// their messages render only on an already-failing path.
const OUTPUT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln",
];

fn check_nondet_debug_fmt(tokens: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        if !OUTPUT_MACROS.contains(&name) || punct_at(tokens, i + 1) != Some("!") {
            continue;
        }
        // Walk the macro's delimited argument list looking for a format
        // string with a Debug spec. The format string is not always the
        // first literal (write!(f, "...") has the writer first), so scan
        // every string literal inside the invocation.
        let mut depth = 0usize;
        let mut j = i + 2;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if t.kind == TokenKind::Literal
                && t.text.starts_with(['"', 'r'])
                && (t.text.contains(":?}") || t.text.contains(":#?}"))
            {
                findings.push(RawFinding {
                    rule: "nondet-debug-fmt",
                    line: tokens[i].line,
                    message: format!("`{name}!` formats a value with a Debug spec"),
                });
                break;
            }
            j += 1;
            if j > i + 512 {
                break; // Defensive cap; no real invocation is this long.
            }
        }
    }
    findings
}

/// Integer types a float's raw bits can be smuggled through with an
/// `as`-cast.
const INT_CAST_TARGETS: &[&str] = &["u64", "i64", "u32", "i32", "u128", "i128", "usize", "isize"];

fn check_cache_key_float(tokens: &[Token]) -> Vec<RawFinding> {
    // Gate: the hazard is specific to code that handles answer-cache keys.
    // Prose in string literals does not count — only the identifier does.
    if !tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "CacheKey")
    {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "to_bits" || t.text == "from_bits" {
            findings.push(RawFinding {
                rule: "cache-key-float",
                line: t.line,
                message: format!(
                    "raw float-bit conversion `{}` in a file handling CacheKey",
                    t.text
                ),
            });
        } else if t.text == "as" {
            if let Some(target) = ident_at(tokens, i + 1) {
                if INT_CAST_TARGETS.contains(&target) {
                    findings.push(RawFinding {
                        rule: "cache-key-float",
                        line: t.line,
                        message: format!("integer cast `as {target}` in a file handling CacheKey"),
                    });
                }
            }
        }
    }
    findings
}

/// First token index of the `#[cfg(test)]` tail, or the stream length.
/// By workspace convention the test module is the tail of the file, so
/// everything after this boundary is fixture code.
fn cfg_test_boundary(tokens: &[Token]) -> usize {
    (0..tokens.len())
        .find(|&i| {
            ident_at(tokens, i) == Some("cfg")
                && punct_at(tokens, i + 1) == Some("(")
                && ident_at(tokens, i + 2) == Some("test")
        })
        .unwrap_or(tokens.len())
}

fn check_hot_path_alloc(tokens: &[Token]) -> Vec<RawFinding> {
    let boundary = cfg_test_boundary(tokens);
    let mut findings = Vec::new();
    for i in 0..boundary {
        let Some(id) = ident_at(tokens, i) else {
            continue;
        };
        let message = match id {
            "Vec"
                if punct_at(tokens, i + 1) == Some("::")
                    && ident_at(tokens, i + 2) == Some("new") =>
            {
                "`Vec::new()` allocates per call in a hot module".to_string()
            }
            "vec" if punct_at(tokens, i + 1) == Some("!") => {
                "`vec![…]` allocates per call in a hot module".to_string()
            }
            "to_vec" if i > 0 && punct_at(tokens, i - 1) == Some(".") => {
                "`.to_vec()` clones into a fresh allocation in a hot module".to_string()
            }
            "collect" if i > 0 && punct_at(tokens, i - 1) == Some(".") => {
                "`.collect()` builds a fresh collection in a hot module".to_string()
            }
            _ => continue,
        };
        findings.push(RawFinding {
            rule: "hot-path-alloc",
            line: tokens[i].line,
            message,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule_id: &str, src: &str) -> Vec<RawFinding> {
        let toks = lex(src).tokens;
        rule_by_id(rule_id)
            .expect("rule exists")
            .check("crates/x/src/lib.rs", &toks)
    }

    #[test]
    fn use_declarations_are_not_hashmap_findings() {
        assert!(run("hashmap-iter", "use std::collections::{HashMap, HashSet};").is_empty());
        assert_eq!(
            run("hashmap-iter", "let m: HashMap<u8, u8> = HashMap::new();").len(),
            2
        );
    }

    #[test]
    fn fn_partial_cmp_definitions_are_skipped() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) } }";
        assert!(run("float-ord", src).is_empty());
        assert_eq!(
            run("float-ord", "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());").len(),
            1
        );
    }

    #[test]
    fn ambient_time_requires_the_full_path() {
        assert_eq!(run("ambient-time", "let t = Instant::now();").len(), 1);
        assert_eq!(
            run("ambient-time", "let t = std::time::SystemTime::now();").len(),
            1
        );
        assert!(run("ambient-time", "let d = started.elapsed(); now();").is_empty());
    }

    #[test]
    fn ambient_time_allowlists_timing_modules() {
        let toks = lex("let t = Instant::now();").tokens;
        let rule = rule_by_id("ambient-time").unwrap();
        assert!(rule.check("crates/server/src/probe.rs", &toks).is_empty());
        assert_eq!(rule.check("crates/server/src/scheduler.rs", &toks).len(), 1);
    }

    #[test]
    fn entropy_sources_are_flagged() {
        assert_eq!(run("ambient-rng", "let mut rng = thread_rng();").len(), 1);
        assert_eq!(run("ambient-rng", "let x: u8 = rand::random();").len(), 1);
        assert!(run("ambient-rng", "let rng = StdRng::seed_from_u64(seed);").is_empty());
    }

    #[test]
    fn stray_seed_derivation_gates_on_sampling_modules() {
        // No sample_once/step_wave in scope: inline seeding is fine.
        assert!(run(
            "stray-seed-derivation",
            "let rng = StdRng::seed_from_u64(seed);"
        )
        .is_empty());
        // Inside a sampling module, an inline seed bypasses the derivation
        // chain and is a finding.
        let src = "fn sample_once() { let rng = StdRng::seed_from_u64(seed ^ 7); }";
        assert_eq!(run("stray-seed-derivation", src).len(), 1);
        // Fixture seeding after the test-module boundary is exempt.
        let src_with_tests = "fn step_wave() {}\n\
                              #[cfg(test)]\n\
                              mod tests { fn f() { let r = StdRng::seed_from_u64(1); } }";
        assert!(run("stray-seed-derivation", src_with_tests).is_empty());
        // The driver module is the sanctioned home of the derivation.
        let toks = lex(src).tokens;
        let rule = rule_by_id("stray-seed-derivation").unwrap();
        assert!(rule.check("crates/core/src/driver.rs", &toks).is_empty());
        assert_eq!(
            rule.check("crates/core/src/lr/estimator.rs", &toks).len(),
            1
        );
    }

    #[test]
    fn debug_fmt_only_in_output_macros() {
        assert_eq!(
            run("nondet-debug-fmt", r#"let s = format!("{m:?}");"#).len(),
            1
        );
        assert_eq!(
            run("nondet-debug-fmt", r#"writeln!(f, "x = {:#?}", m)?;"#).len(),
            1
        );
        assert!(run("nondet-debug-fmt", r#"assert_eq!(a, b, "{m:?}");"#).is_empty());
        assert!(run("nondet-debug-fmt", r#"let s = format!("{m}");"#).is_empty());
    }

    #[test]
    fn cache_key_float_fires_only_in_cache_key_files() {
        // Same hazards, no CacheKey in scope: silent.
        assert!(run("cache-key-float", "let b = x.to_bits(); let n = f as u64;").is_empty());
        // With CacheKey in scope, each conversion is a finding.
        let src = "let k = CacheKey { a }; let b = p.x.to_bits(); let c = f64::from_bits(b); \
                   let d = p.y as u64;";
        assert_eq!(run("cache-key-float", src).len(), 3);
        // The canonical constructor's own module is allowlisted.
        let toks = lex(src).tokens;
        let rule = rule_by_id("cache-key-float").unwrap();
        assert!(rule.check("crates/service/src/cache.rs", &toks).is_empty());
        // ... but an injected copy elsewhere in the tree is not.
        assert_eq!(
            rule.check("crates/core/src/cache_key_float_injected.rs", &toks)
                .len(),
            3
        );
    }

    #[test]
    fn hot_path_alloc_is_scoped_to_the_hot_modules() {
        let src = "let mut v = Vec::new(); let w = vec![0.0, len]; \
                   let a = xs.to_vec(); let b = ys.iter().collect();";
        let toks = lex(src).tokens;
        let rule = rule_by_id("hot-path-alloc").unwrap();
        // All four allocating idioms fire inside a hot module...
        assert_eq!(rule.check("crates/geom/src/cell_engine.rs", &toks).len(), 4);
        assert_eq!(rule.check("crates/geom/src/topk_cell.rs", &toks).len(), 4);
        // ... and none of them anywhere else.
        assert!(rule.check("crates/geom/src/convex.rs", &toks).is_empty());
        assert!(rule
            .check("crates/core/src/lr/history.rs", &toks)
            .is_empty());
    }

    #[test]
    fn hot_path_alloc_exempts_the_test_module_tail() {
        let src = "fn hot() { buf.clear(); }\n\
                   #[cfg(test)]\n\
                   mod tests { fn f() { let v = vec![1, 2]; let w = Vec::new(); } }";
        let toks = lex(src).tokens;
        let rule = rule_by_id("hot-path-alloc").unwrap();
        assert!(rule
            .check("crates/geom/src/cell_engine.rs", &toks)
            .is_empty());
    }

    #[test]
    fn hot_path_alloc_ignores_non_allocating_idioms() {
        // Scratch reuse (clear/extend/push), Vec types in signatures, and
        // turbofish-free iteration must not fire.
        let src = "fn f(out: &mut Vec<Point>) { out.clear(); out.extend(src.iter().copied()); \
                   out.push(p); let n: Vec<Point>; }";
        let toks = lex(src).tokens;
        let rule = rule_by_id("hot-path-alloc").unwrap();
        assert!(rule
            .check("crates/geom/src/cell_engine.rs", &toks)
            .is_empty());
    }

    #[test]
    fn unsafe_tokens_are_flagged_but_attrs_are_not() {
        assert_eq!(run("unsafe-block", "unsafe { *p }").len(), 1);
        assert!(run("unsafe-block", "#![forbid(unsafe_code)]").is_empty());
    }
}
