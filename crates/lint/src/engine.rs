//! File walking, rule execution, suppression matching, and reporting.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::rules::{rule_by_id, RawFinding, RULES};

/// A finding after suppression matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Id of the rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Occurrence-specific description.
    pub message: String,
    /// The rule's fix hint.
    pub hint: &'static str,
    /// `Some(reason)` when an inline allow covers this finding.
    pub suppressed: Option<String>,
}

/// Why a suppression annotation is considered stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaleKind {
    /// The annotation names a rule id that does not exist.
    UnknownRule,
    /// The annotation's target line has no finding of the named rule.
    Unmatched,
    /// The `lbs-lint:` comment could not be parsed.
    Malformed,
}

impl StaleKind {
    /// Stable string form used in human and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            StaleKind::UnknownRule => "unknown-rule",
            StaleKind::Unmatched => "unmatched",
            StaleKind::Malformed => "malformed",
        }
    }
}

/// A suppression annotation that no longer (or never) did anything.
/// In deny mode these fail the build: a stale allow is either a typo, a
/// leftover from fixed code, or a shadow ban on a rule that was renamed —
/// all of which silently weaken the gate if tolerated.
#[derive(Debug, Clone)]
pub struct StaleSuppression {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the annotation comment.
    pub line: u32,
    /// Why it is stale.
    pub kind: StaleKind,
    /// Details (rule id, parse error, ...).
    pub detail: String,
}

/// The result of linting a file tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings covered by an inline allow, same order.
    pub suppressed: Vec<Finding>,
    /// Stale/malformed suppressions, sorted by (file, line).
    pub stale: Vec<StaleSuppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when deny mode should exit non-zero.
    pub fn deny_fails(&self) -> bool {
        !self.findings.is_empty() || !self.stale.is_empty()
    }
}

/// Directory names never descended into. `vendor` holds third-party
/// stand-ins (exempt by contract), `target` is build output, `fixtures`
/// holds the lint's own deliberately-hazardous test snippets, and `.git`
/// is not source.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git"];

/// Collects every workspace `.rs` file under `root`, sorted by relative
/// path so output order never depends on directory-entry order.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints a single source text. Exposed for fixture tests.
pub fn lint_source(rel: &str, src: &str) -> (Vec<Finding>, Vec<Finding>, Vec<StaleSuppression>) {
    let out = lexer::lex(src);
    let mut raw: Vec<RawFinding> = Vec::new();
    for rule in RULES {
        raw.extend(rule.check(rel, &out.tokens));
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let mut suppressed_by: Vec<Option<usize>> = vec![None; raw.len()];
    let mut stale: Vec<StaleSuppression> = Vec::new();

    for m in &out.malformed {
        stale.push(StaleSuppression {
            file: rel.to_string(),
            line: m.line,
            kind: StaleKind::Malformed,
            detail: m.detail.clone(),
        });
    }

    for (sup_idx, sup) in out.suppressions.iter().enumerate() {
        if rule_by_id(&sup.rule).is_none() {
            stale.push(StaleSuppression {
                file: rel.to_string(),
                line: sup.comment_line,
                kind: StaleKind::UnknownRule,
                detail: format!("no such rule `{}`", sup.rule),
            });
            continue;
        }
        let mut matched = false;
        if let Some(target) = sup.target_line {
            for (i, f) in raw.iter().enumerate() {
                if f.line == target && f.rule == sup.rule {
                    matched = true;
                    // First annotation wins if several target the same line.
                    suppressed_by[i].get_or_insert(sup_idx);
                }
            }
        }
        if !matched {
            stale.push(StaleSuppression {
                file: rel.to_string(),
                line: sup.comment_line,
                kind: StaleKind::Unmatched,
                detail: format!(
                    "allow({}) matches no `{}` finding on its target line",
                    sup.rule, sup.rule
                ),
            });
        }
    }

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for (i, f) in raw.into_iter().enumerate() {
        let hint = rule_by_id(f.rule).map(|r| r.hint).unwrap_or("");
        let finding = Finding {
            rule: f.rule,
            file: rel.to_string(),
            line: f.line,
            message: f.message,
            hint,
            suppressed: suppressed_by[i].map(|s| out.suppressions[s].reason.clone()),
        };
        if finding.suppressed.is_some() {
            suppressed.push(finding);
        } else {
            findings.push(finding);
        }
    }
    stale.sort_by_key(|s| (s.line, s.detail.clone()));
    (findings, suppressed, stale)
}

/// Lints every workspace source file under `root`.
pub fn lint_tree(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in collect_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        let (findings, suppressed, stale) = lint_source(&rel, &src);
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
        report.stale.extend(stale);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut fields = vec![
        format!("\"rule\":\"{}\"", json_escape(f.rule)),
        format!("\"file\":\"{}\"", json_escape(&f.file)),
        format!("\"line\":{}", f.line),
        format!("\"message\":\"{}\"", json_escape(&f.message)),
        format!("\"hint\":\"{}\"", json_escape(f.hint)),
    ];
    if let Some(reason) = &f.suppressed {
        fields.push(format!("\"suppressed_reason\":\"{}\"", json_escape(reason)));
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders the report as a single JSON object (schema version 1).
pub fn to_json(report: &LintReport, deny: bool) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let suppressed: Vec<String> = report.suppressed.iter().map(finding_json).collect();
    let stale: Vec<String> = report
        .stale
        .iter()
        .map(|s| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&s.file),
                s.line,
                s.kind.as_str(),
                json_escape(&s.detail)
            )
        })
        .collect();
    let ok = !deny || !report.deny_fails();
    format!(
        "{{\"version\":1,\"deny\":{},\"ok\":{},\"files_scanned\":{},\"findings\":[{}],\"suppressed\":[{}],\"stale_suppressions\":[{}]}}",
        deny,
        ok,
        report.files_scanned,
        findings.join(","),
        suppressed.join(","),
        stale.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_all_matching_findings_on_the_line() {
        // Two HashMap tokens on one line; one allow silences both.
        let src = "let m: HashMap<u8, u8> = HashMap::new(); // lbs-lint: allow(hashmap-iter, reason = \"membership only\")\n";
        let (findings, suppressed, stale) = lint_source("x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn unknown_rule_suppression_is_stale() {
        let src = "// lbs-lint: allow(no-such-rule, reason = \"x\")\nlet a = 1;\n";
        let (_, _, stale) = lint_source("x.rs", src);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].kind, StaleKind::UnknownRule);
    }

    #[test]
    fn unmatched_suppression_is_stale() {
        let src = "// lbs-lint: allow(hashmap-iter, reason = \"was fixed\")\nlet a = 1;\n";
        let (_, _, stale) = lint_source("x.rs", src);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].kind, StaleKind::Unmatched);
    }

    #[test]
    fn wrong_rule_on_right_line_is_stale_and_finding_survives() {
        let src =
            "let t = Instant::now(); // lbs-lint: allow(hashmap-iter, reason = \"wrong rule\")\n";
        let (findings, suppressed, stale) = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "ambient-time");
        assert!(suppressed.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].kind, StaleKind::Unmatched);
    }

    #[test]
    fn json_is_well_formed_for_empty_and_nonempty_reports() {
        let report = LintReport::default();
        let js = to_json(&report, true);
        assert!(js.contains("\"ok\":true"));
        let src = "let t = Instant::now();\n";
        let (findings, suppressed, stale) = lint_source("x.rs", src);
        let report = LintReport {
            findings,
            suppressed,
            stale,
            files_scanned: 1,
        };
        let js = to_json(&report, true);
        assert!(js.contains("\"ok\":false"));
        assert!(js.contains("\"rule\":\"ambient-time\""));
    }
}
