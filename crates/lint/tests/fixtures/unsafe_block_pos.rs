// Positive fixture: any unsafe token in workspace code must be flagged.
fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
