// Negative fixture: passing instants around (no ambient read) is fine, and
// prose about Instant::now must not fire.
use std::time::{Duration, Instant};

/// Callers inject the clock; `Instant::now` never appears in code here.
fn elapsed_ms(started: Instant, now: Instant) -> u64 {
    now.duration_since(started).as_millis() as u64
}

fn budget() -> Duration {
    Duration::from_millis(250)
}
