// Negative fixture: the scratch-arena idiom — buffers are cleared and
// refilled in place, never reallocated per call, so the hot-path-alloc rule
// stays silent even under the hot-module paths it is scoped to.
fn clip_round_with(scratch: &mut ClipScratch, candidates: &[Point], len: usize) -> usize {
    scratch.poly_a.clear();
    scratch.poly_a.extend(candidates.iter().copied());
    scratch.ts.clear();
    scratch.ts.resize(len, 0.0);
    for (slot, p) in scratch.ts.iter_mut().zip(scratch.poly_a.iter()) {
        *slot = p.x;
    }
    scratch.poly_a.len()
}
