// Fixture: every hazard carries a valid allow, so deny mode passes.
use std::collections::HashSet;

fn dedup(xs: &[u64]) -> usize {
    // lbs-lint: allow(hashmap-iter, reason = "membership only; never iterated")
    let mut seen: HashSet<u64> = HashSet::new();
    let mut kept = 0;
    for x in xs {
        if seen.insert(*x) {
            kept += 1;
        }
    }
    kept
}
