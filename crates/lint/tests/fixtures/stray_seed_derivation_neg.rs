// Negative fixture: a sampling module that takes its RNG from the driver's
// derivation chain, with fixture seeding confined to the test module.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_once<R: Rng>(rng: &mut R) -> f64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }
}
