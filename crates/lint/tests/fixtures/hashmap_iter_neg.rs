// Negative fixture: ordered collections, prose, and strings must not fire.
use std::collections::{BTreeMap, BTreeSet};

/// A HashMap would randomize iteration order here; a BTreeMap does not.
fn tally(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for x in xs {
        *counts.entry(*x).or_insert(0) += 1;
    }
    let _label = "HashMap and HashSet inside a string literal";
    let _ordered: BTreeSet<u64> = xs.iter().copied().collect();
    counts.into_iter().collect()
}
