// Positive fixture: HashMap/HashSet in code positions must be flagged.
use std::collections::{HashMap, HashSet};

fn tally(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for x in xs {
        *counts.entry(*x).or_insert(0) += 1;
    }
    let mut seen = HashSet::new();
    seen.insert(1u64);
    counts.into_iter().collect()
}
