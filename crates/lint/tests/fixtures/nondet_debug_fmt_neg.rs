// Negative fixture: Display formatting and assert-message Debug are fine.
fn report(pairs: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(&format!("{k}={v}\n"));
    }
    assert_eq!(pairs.len(), pairs.len(), "{pairs:?}");
    out
}
