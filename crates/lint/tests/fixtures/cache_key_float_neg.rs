// Negative fixture: CacheKey built only through the canonical constructor;
// no raw bit conversions, no integer casts.
use lbs_service::CacheKey;

fn key_for(version: u64, point: &Point, k: usize) -> CacheKey {
    // for_query canonicalizes -0.0 and NaN before any bits are compared.
    CacheKey::for_query(version, point, k)
}

fn describe(key: &CacheKey) -> String {
    format!("cache key for version {}", key.version())
}
