// Negative fixture: the seeded (root_seed, sample_index) plumbing is the
// only sanctioned randomness; thread_rng in prose must not fire.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn draw(root_seed: u64, sample_index: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(root_seed ^ sample_index);
    rng.gen()
}
