// Positive fixture: partial_cmp comparators must be flagged.
fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

fn best(xs: &[f64]) -> Option<&f64> {
    xs.iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}
