// Positive fixture: ambient wall-clock reads must be flagged.
use std::time::{Duration, Instant, SystemTime};

fn elapsed_ms(since: Instant) -> u64 {
    let now = Instant::now();
    now.duration_since(since).as_millis() as u64
}

fn wall() -> SystemTime {
    SystemTime::now()
}
