// Positive fixture: per-call allocations in the cell-geometry hot path —
// exactly four findings (Vec::new, vec![], .to_vec(), .collect()) when the
// file is linted under one of the rule's hot-module paths.
fn clip_round(candidates: &[Point], len: usize) -> Vec<Point> {
    let mut poly: Vec<Point> = Vec::new();
    let mut breakpoints = vec![0.0; len];
    let snapshot = candidates.to_vec();
    let distances: Vec<f64> = snapshot.iter().map(|p| p.x).collect();
    breakpoints[0] = distances[0];
    poly
}
