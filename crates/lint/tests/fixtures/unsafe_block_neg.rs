// Negative fixture: safe code, the forbid attribute, and prose/strings
// containing the word unsafe must not fire.
#![forbid(unsafe_code)]

/// Nothing unsafe here; "unsafe" in a string is prose, not code.
fn read_first(xs: &[u8]) -> Option<u8> {
    let _label = "unsafe";
    xs.first().copied()
}
