// Positive fixture: entropy sources must be flagged.
fn draw() -> f64 {
    let mut rng = rand::thread_rng();
    let _also: u8 = rand::random();
    rng.gen()
}

fn reseed() -> StdRng {
    StdRng::from_entropy()
}
