// Negative fixture: total_cmp comparators and PartialOrd impl definitions.
use std::cmp::Ordering;

fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    // partial_cmp in a comment must not fire.
    xs.sort_by(f64::total_cmp);
    xs
}

struct ByScore(f64);
impl PartialEq for ByScore {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for ByScore {}
impl PartialOrd for ByScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByScore {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
