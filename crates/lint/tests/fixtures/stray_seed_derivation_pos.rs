// Positive fixture: inline seeding inside a sampling module bypasses the
// blessed sample_seed/stratum_seed derivation chain.
fn sample_once(seed: u64, stratum: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed ^ stratum.wrapping_mul(7));
    rng.gen()
}
