// Fixture: all three stale-suppression kinds.
// lbs-lint: allow(no-such-rule, reason = "unknown rule id")
fn a() -> u64 {
    1
}

// lbs-lint: allow(hashmap-iter, reason = "the hazard below was fixed long ago")
fn b() -> u64 {
    2
}

// lbs-lint: allow(float-ord)
fn c() -> u64 {
    3
}
