// Positive fixture: Debug specs in output-producing macros must be flagged.
fn report(stops: &[(u64, u64)]) -> String {
    let mut out = format!("stops: {stops:?}\n");
    out.push_str("done");
    out
}

fn log_pretty(stops: &[(u64, u64)]) {
    println!("snapshot = {:#?}", stops);
}
