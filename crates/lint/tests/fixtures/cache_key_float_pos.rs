// Positive fixture: raw float-bit handling in a file that names CacheKey
// bypasses the canonicalizing constructor — exactly three findings.
struct CacheKey {
    x_bits: u64,
}

fn hand_rolled_key(x: f64) -> CacheKey {
    // A -0.0 query point now misses the 0.0 entry.
    CacheKey { x_bits: x.to_bits() }
}

fn round_trip(bits: u64, y: f64) -> (f64, u64) {
    (f64::from_bits(bits), y as u64)
}
