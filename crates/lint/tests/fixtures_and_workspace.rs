//! Fixture-based tests for every rule, suppression/stale-handling tests,
//! and the gate test asserting the committed workspace is finding-free in
//! deny mode.

use std::fs;
use std::path::{Path, PathBuf};

use lbs_lint::engine::{lint_source, lint_tree, to_json, LintReport, StaleKind};
use lbs_lint::rules::{Rule, RULES};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The path a fixture for `rule` must be linted under: the rule's first scope
/// suffix for scoped rules (which fire nowhere else), a neutral path (so no
/// rule path-allowlist applies) for the rest.
fn scope_path(rule: &Rule, name: &str) -> String {
    match rule.only_path_suffixes.first() {
        Some(suffix) => (*suffix).to_string(),
        None => format!("crates/x/src/{name}"),
    }
}

/// Runs the linter over a fixture at a given path, returning unsuppressed
/// rule ids.
fn lint_fixture_at(path: &str, name: &str) -> Vec<&'static str> {
    let src = fixture(name);
    let (findings, _suppressed, _stale) = lint_source(path, &src);
    findings.iter().map(|f| f.rule).collect()
}

/// Runs the linter over a fixture under a neutral path.
fn lint_fixture(name: &str) -> Vec<&'static str> {
    lint_fixture_at(&format!("crates/x/src/{name}"), name)
}

#[test]
fn every_rule_has_a_positive_and_negative_fixture() {
    for rule in RULES {
        let stem = rule.id.replace('-', "_");
        let pos_name = format!("{stem}_pos.rs");
        let pos = lint_fixture_at(&scope_path(rule, &pos_name), &pos_name);
        assert!(
            pos.contains(&rule.id),
            "{}_pos.rs did not trigger `{}` (got {:?})",
            stem,
            rule.id,
            pos
        );
        let neg_name = format!("{stem}_neg.rs");
        let neg = lint_fixture_at(&scope_path(rule, &neg_name), &neg_name);
        assert!(
            !neg.contains(&rule.id),
            "{}_neg.rs triggered `{}`",
            stem,
            rule.id
        );
    }
}

#[test]
fn positive_fixtures_have_exact_finding_counts() {
    assert_eq!(lint_fixture("hashmap_iter_pos.rs").len(), 3); // decl + 2 ctors
    assert_eq!(lint_fixture("float_ord_pos.rs").len(), 2);
    assert_eq!(lint_fixture("ambient_time_pos.rs").len(), 2);
    assert_eq!(lint_fixture("ambient_rng_pos.rs").len(), 3);
    assert_eq!(lint_fixture("unsafe_block_pos.rs").len(), 1);
    assert_eq!(lint_fixture("nondet_debug_fmt_pos.rs").len(), 2);
    assert_eq!(lint_fixture("cache_key_float_pos.rs").len(), 3); // to_bits + from_bits + as u64
    assert_eq!(
        lint_fixture_at("crates/geom/src/cell_engine.rs", "hot_path_alloc_pos.rs").len(),
        4 // Vec::new + vec![] + .to_vec() + .collect()
    );
}

#[test]
fn negative_fixtures_are_completely_clean() {
    for rule in RULES {
        let stem = rule.id.replace('-', "_");
        let name = format!("{stem}_neg.rs");
        let src = fixture(&name);
        let (findings, _, stale) = lint_source(&scope_path(rule, &name), &src);
        assert!(findings.is_empty(), "{name}: {findings:?}");
        assert!(stale.is_empty(), "{name}: {stale:?}");
    }
}

#[test]
fn valid_suppressions_silence_findings_and_are_not_stale() {
    let src = fixture("suppressed_clean.rs");
    let (findings, suppressed, stale) = lint_source("crates/x/src/suppressed_clean.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(stale.is_empty(), "{stale:?}");
    assert_eq!(suppressed.len(), 2); // HashSet decl + ctor on one line
    assert!(suppressed
        .iter()
        .all(|f| f.suppressed.as_deref() == Some("membership only; never iterated")));
}

#[test]
fn stale_suppressions_fail_deny_mode() {
    let src = fixture("stale_suppressions.rs");
    let (findings, _, stale) = lint_source("crates/x/src/stale_suppressions.rs", &src);
    assert!(findings.is_empty(), "{findings:?}");
    let kinds: Vec<_> = stale.iter().map(|s| s.kind.clone()).collect();
    assert!(kinds.contains(&StaleKind::UnknownRule), "{stale:?}");
    assert!(kinds.contains(&StaleKind::Unmatched), "{stale:?}");
    assert!(kinds.contains(&StaleKind::Malformed), "{stale:?}");
    let report = LintReport {
        findings: Vec::new(),
        suppressed: Vec::new(),
        stale,
        files_scanned: 1,
    };
    assert!(report.deny_fails());
    assert!(to_json(&report, true).contains("\"ok\":false"));
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// The committed tree must be finding-free in deny mode: no unsuppressed
/// hazards, no stale or malformed suppressions. This is the same check the
/// `static-analysis` CI job enforces via `cargo run -p lbs-lint -- --deny`.
#[test]
fn committed_workspace_is_finding_free_in_deny_mode() {
    let report = lint_tree(&workspace_root()).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{:#?}",
        report.findings
    );
    assert!(
        report.stale.is_empty(),
        "stale suppressions:\n{:#?}",
        report.stale
    );
    assert!(!report.deny_fails());
}

/// Injecting any positive fixture into a scanned location must flip deny
/// mode to failing — the end-to-end property the CI gate relies on.
#[test]
fn injected_fixture_hazard_fails_deny_mode() {
    let root = workspace_root();
    let mut base = lint_tree(&root).expect("scan workspace");
    for rule in RULES {
        let stem = rule.id.replace('-', "_");
        let src = fixture(&format!("{stem}_pos.rs"));
        // Lint the fixture as if it lived at a real (non-allowlisted)
        // workspace path — for scoped rules, the hot module they police —
        // and fold it into the clean report.
        let injected_path = match rule.only_path_suffixes.first() {
            Some(suffix) => (*suffix).to_string(),
            None => format!("crates/core/src/{stem}_injected.rs"),
        };
        let (findings, _, stale) = lint_source(&injected_path, &src);
        assert!(
            !findings.is_empty(),
            "injected {stem}_pos.rs produced no findings"
        );
        base.findings.extend(findings);
        base.stale.extend(stale);
    }
    assert!(base.deny_fails());
}

/// The JSON report for the committed tree parses as the expected shape.
#[test]
fn workspace_json_report_is_ok() {
    let report = lint_tree(&workspace_root()).expect("scan workspace");
    let js = to_json(&report, true);
    assert!(js.starts_with("{\"version\":1,"));
    assert!(js.contains("\"deny\":true"));
    assert!(js.contains("\"ok\":true"));
    assert!(js.contains("\"stale_suppressions\":[]"));
}
