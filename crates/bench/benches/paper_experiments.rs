//! Criterion benches: one group per family of paper artefacts.
//!
//! Each bench runs the corresponding experiment at `Scale::Micro` so that
//! `cargo bench` exercises exactly the code paths of the full reproduction
//! while finishing in minutes. The wall-clock times reported here track the
//! *offline* cost of the algorithms (geometry, bookkeeping); the paper's cost
//! metric — the number of kNN queries — is what the `repro` binary reports.

use criterion::{criterion_group, criterion_main, Criterion};

use lbs_bench::{run_experiment, Scale};

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    let mut group = c.benchmark_group("paper");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function(id, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(run_experiment(id, Scale::Micro, 42 + seed))
        });
    });
    group.finish();
}

fn fig11_voronoi(c: &mut Criterion) {
    bench_experiment(c, "fig11");
}

fn fig12_convergence(c: &mut Criterion) {
    bench_experiment(c, "fig12");
}

fn fig13_sampling_strategy(c: &mut Criterion) {
    bench_experiment(c, "fig13");
}

fn fig14_count_schools(c: &mut Criterion) {
    bench_experiment(c, "fig14");
}

fn fig15_count_restaurants(c: &mut Criterion) {
    bench_experiment(c, "fig15");
}

fn fig16_sum_enrollment(c: &mut Criterion) {
    bench_experiment(c, "fig16");
}

fn fig17_avg_rating(c: &mut Criterion) {
    bench_experiment(c, "fig17");
}

fn fig18_database_size(c: &mut Criterion) {
    bench_experiment(c, "fig18");
}

fn fig19_varying_k(c: &mut Criterion) {
    bench_experiment(c, "fig19");
}

fn fig20_ablation(c: &mut Criterion) {
    bench_experiment(c, "fig20");
}

fn fig21_localization(c: &mut Criterion) {
    bench_experiment(c, "fig21");
}

fn table1_online(c: &mut Criterion) {
    bench_experiment(c, "table1");
}

criterion_group!(
    name = paper_experiments;
    config = Criterion::default().significance_level(0.1).noise_threshold(0.1);
    targets = fig11_voronoi,
        fig12_convergence,
        fig13_sampling_strategy,
        fig14_count_schools,
        fig15_count_restaurants,
        fig16_sum_enrollment,
        fig17_avg_rating,
        fig18_database_size,
        fig19_varying_k,
        fig20_ablation,
        fig21_localization,
        table1_online
);
criterion_main!(paper_experiments);
