//! Criterion benches: one group per family of paper artefacts.
//!
//! Each bench runs the corresponding experiment at `Scale::Micro` so that
//! `cargo bench` exercises exactly the code paths of the full reproduction
//! while finishing in minutes. The wall-clock times reported here track the
//! *offline* cost of the algorithms (geometry, bookkeeping); the paper's cost
//! metric — the number of kNN queries — is what the `repro` binary reports.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};

use lbs_bench::{run_experiment, Scale};

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    let mut group = c.benchmark_group("paper");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function(id, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(run_experiment(id, Scale::Micro, 42 + seed))
        });
    });
    group.finish();
}

fn fig11_voronoi(c: &mut Criterion) {
    bench_experiment(c, "fig11");
}

fn fig12_convergence(c: &mut Criterion) {
    bench_experiment(c, "fig12");
}

fn fig13_sampling_strategy(c: &mut Criterion) {
    bench_experiment(c, "fig13");
}

fn fig14_count_schools(c: &mut Criterion) {
    bench_experiment(c, "fig14");
}

fn fig15_count_restaurants(c: &mut Criterion) {
    bench_experiment(c, "fig15");
}

fn fig16_sum_enrollment(c: &mut Criterion) {
    bench_experiment(c, "fig16");
}

fn fig17_avg_rating(c: &mut Criterion) {
    bench_experiment(c, "fig17");
}

fn fig18_database_size(c: &mut Criterion) {
    bench_experiment(c, "fig18");
}

fn fig19_varying_k(c: &mut Criterion) {
    bench_experiment(c, "fig19");
}

fn fig20_ablation(c: &mut Criterion) {
    bench_experiment(c, "fig20");
}

fn fig21_localization(c: &mut Criterion) {
    bench_experiment(c, "fig21");
}

fn table1_online(c: &mut Criterion) {
    bench_experiment(c, "table1");
}

/// Geometry-level microbench: the legacy clip-everything / slab-area
/// construction versus the pruned engine on one representative candidate
/// set (a dense cluster around the site plus far spread — the shape the
/// explorer feeds it), plus the arena axis (warm reused scratch versus a
/// fresh arena per build), the certificate axis (pruned versus unpruned
/// engine), and the level-region constructions of the LNR path.
fn cell_construction_legacy_vs_pruned(c: &mut Criterion) {
    use lbs_geom::{
        level_region, level_region_pruned, sort_by_distance, top_k_cell, top_k_cell_pruned,
        top_k_cell_pruned_with, ClipScratch, HalfPlane, Point, Rect,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let bbox = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
    let site = Point::new(50.0, 50.0);
    let mut rng = StdRng::seed_from_u64(2015);
    let mut candidates: Vec<Point> = Vec::new();
    for _ in 0..12 {
        candidates.push(Point::new(
            site.x + rng.gen_range(-6.0..6.0),
            site.y + rng.gen_range(-6.0..6.0),
        ));
    }
    for _ in 0..36 {
        candidates.push(Point::new(
            rng.gen_range(0.0..100.0),
            rng.gen_range(0.0..100.0),
        ));
    }
    sort_by_distance(&site, &mut candidates);

    let mut group = c.benchmark_group("cell_construction");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 2] {
        group.bench_function(format!("top{k}_legacy"), |b| {
            b.iter(|| std::hint::black_box(top_k_cell(&site, &candidates, k, &bbox).area));
        });
        group.bench_function(format!("top{k}_pruned"), |b| {
            b.iter(|| {
                std::hint::black_box(top_k_cell_pruned(&site, &candidates, k, &bbox, true).0.area)
            });
        });
        // The certificate axis: the same engine construction with the
        // security-radius pruning disabled (every candidate clipped).
        group.bench_function(format!("top{k}_unpruned"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    top_k_cell_pruned(&site, &candidates, k, &bbox, false)
                        .0
                        .area,
                )
            });
        });
        // The arena axis: one warm scratch reused across builds (the
        // steady state of a History-owned arena) versus the fresh arena
        // every `top_k_cell_pruned` call implies (the cold-cache cost).
        group.bench_function(format!("top{k}_pruned_warm_scratch"), |b| {
            let mut scratch = ClipScratch::new();
            b.iter(|| {
                std::hint::black_box(
                    top_k_cell_pruned_with(&mut scratch, &site, &candidates, k, &bbox, true)
                        .0
                        .area,
                )
            });
        });
        group.bench_function(format!("top{k}_pruned_cold_scratch"), |b| {
            b.iter(|| {
                let mut scratch = ClipScratch::new();
                std::hint::black_box(
                    top_k_cell_pruned_with(&mut scratch, &site, &candidates, k, &bbox, true)
                        .0
                        .area,
                )
            });
        });
    }

    // Level-region constructions (the LNR explorer's geometry): the legacy
    // slab decomposition versus the pruned engine over the same
    // half-plane set, anchored at the site the planes were learned around.
    let halfplanes: Vec<HalfPlane> = candidates
        .iter()
        .filter_map(|o| HalfPlane::closer_to(&site, o))
        .collect();
    for k in [1usize, 2] {
        group.bench_function(format!("level_region{k}_legacy"), |b| {
            b.iter(|| std::hint::black_box(level_region(&halfplanes, k, &bbox).area));
        });
        group.bench_function(format!("level_region{k}_pruned"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    level_region_pruned(&halfplanes, &site, k, &bbox, true)
                        .0
                        .area,
                )
            });
        });
    }
    group.finish();
}

/// The cell-engine acceptance bench: the same LR COUNT estimation with the
/// pruned construction + caches on (the default) versus off (the legacy
/// path). Estimates are bit-identical between the two — the equivalence
/// tests enforce that — so the ratio of these timings is a pure
/// measurement of what the engine saves.
fn cell_engine_on_vs_off(c: &mut Criterion) {
    use lbs_core::{Aggregate, LrLbsAgg, LrLbsAggConfig, SampleDriver};
    use lbs_data::ScenarioBuilder;
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let scale = Scale::Micro;
    let mut rng = StdRng::seed_from_u64(2015);
    let dataset = ScenarioBuilder::usa_pois(scale.poi_count())
        .with_starbucks(scale.poi_count() / 40)
        .build(&mut rng);
    let region = dataset.bbox();
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let budget = scale.lr_budget();

    let mut group = c.benchmark_group("cell_engine");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    for (name, prune, cache) in [
        ("lr_count_engine_on", true, true),
        ("lr_count_prune_only", true, false),
        ("lr_count_engine_off", false, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut estimator = LrLbsAgg::new(LrLbsAggConfig {
                    prune_cells: prune,
                    cache_cells: cache,
                    ..LrLbsAggConfig::default()
                });
                let est = estimator
                    .estimate_parallel(
                        &service,
                        &region,
                        &Aggregate::count_schools(),
                        budget,
                        2015,
                        &SampleDriver::serial(),
                    )
                    .expect("bench estimation must succeed");
                std::hint::black_box(est.value)
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = paper_experiments;
    config = Criterion::default().significance_level(0.1).noise_threshold(0.1);
    targets = fig11_voronoi,
        fig12_convergence,
        fig13_sampling_strategy,
        fig14_count_schools,
        fig15_count_restaurants,
        fig16_sum_enrollment,
        fig17_avg_rating,
        fig18_database_size,
        fig19_varying_k,
        fig20_ablation,
        fig21_localization,
        table1_online,
        cell_construction_legacy_vs_pruned,
        cell_engine_on_vs_off
);
criterion_main!(paper_experiments);
