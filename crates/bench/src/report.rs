//! Machine-readable run reports (`BENCH_repro.json`).
//!
//! Every `repro` invocation writes one [`BenchReport`] next to its CSV
//! output: per-experiment wall time, the deepest query cost exercised, the
//! mean relative error, and — when `--threads` asks for more than one worker
//! — a serial-versus-parallel speedup probe with a determinism check. The
//! file is the machine-readable trajectory of the reproduction: successive
//! runs can be diffed to spot performance or accuracy regressions.
//!
//! `EXPERIMENTS.md` at the repository root documents every field.

use serde::{Deserialize, Serialize};

use lbs_core::{Aggregate, LrLbsAgg, LrLbsAggConfig, SampleDriver};
use lbs_service::{ServiceConfig, SimulatedLbs};

use crate::result::ExperimentResult;
use crate::scale::Scale;

/// Summary of one experiment run, as recorded in `BENCH_repro.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Experiment identifier (`fig11` … `table1`).
    pub id: String,
    /// Human-readable title (matches the paper artefact).
    pub title: String,
    /// Wall-clock seconds the experiment took.
    pub wall_time_s: f64,
    /// Number of result rows produced.
    pub rows: usize,
    /// Deepest query cost reported by any row
    /// ([`ExperimentResult::max_reported_cost`]); `None` for experiments
    /// without a cost axis.
    pub max_query_cost: Option<u64>,
    /// Mean of the reported relative errors
    /// ([`ExperimentResult::mean_reported_rel_error`]); `None` for
    /// experiments without an error axis.
    pub mean_rel_error: Option<f64>,
}

impl BenchRecord {
    /// Builds a record from a finished experiment and its measured wall
    /// time.
    pub fn from_result(result: &ExperimentResult, wall_time_s: f64) -> Self {
        BenchRecord {
            id: result.id.clone(),
            title: result.title.clone(),
            wall_time_s,
            rows: result.rows.len(),
            max_query_cost: result.max_reported_cost(),
            mean_rel_error: result.mean_reported_rel_error(),
        }
    }
}

/// Serial-versus-parallel probe of the sample driver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// What was measured (a COUNT estimation over the experiment dataset).
    pub probe: String,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Query budget of each run.
    pub query_budget: u64,
    /// Wall-clock seconds with 1 worker thread.
    pub serial_wall_s: f64,
    /// Wall-clock seconds with `threads` worker threads.
    pub parallel_wall_s: f64,
    /// `serial_wall_s / parallel_wall_s`.
    pub speedup: f64,
    /// `true` when the serial and parallel runs produced bit-identical
    /// estimates and confidence intervals (they must, by the driver's
    /// determinism contract).
    pub deterministic: bool,
    /// CPUs the OS reported as available (speedups are bounded by this).
    pub available_parallelism: usize,
}

/// The complete content of `BENCH_repro.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version of this file.
    pub schema_version: u32,
    /// Scale preset the run used.
    pub scale: Scale,
    /// Root seed of the run.
    pub seed: u64,
    /// Worker threads of the run.
    pub threads: usize,
    /// Per-experiment summaries, in run order.
    pub experiments: Vec<BenchRecord>,
    /// Present when the run was asked for more than one thread.
    pub speedup: Option<SpeedupReport>,
}

impl BenchReport {
    /// Creates an empty report shell.
    pub fn new(scale: Scale, seed: u64, threads: usize) -> Self {
        BenchReport {
            schema_version: 1,
            scale,
            seed,
            threads,
            experiments: Vec::new(),
            speedup: None,
        }
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Runs the serial-versus-parallel speedup probe: one COUNT estimation over
/// the standard experiment dataset, once with 1 worker and once with
/// `threads` workers, verifying that the two estimates are bit-identical.
///
/// The probe is the parallel-scaling acceptance check of the sample driver;
/// `repro --threads N` (N > 1) runs it automatically and records the result
/// in `BENCH_repro.json`. Speedups are bounded by
/// `available_parallelism` — on a single-core machine the expected value
/// is ~1.0.
pub fn run_speedup_probe(scale: Scale, seed: u64, threads: usize) -> SpeedupReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = lbs_data::ScenarioBuilder::usa_pois(scale.poi_count())
        .with_starbucks(scale.poi_count() / 40)
        .build(&mut rng);
    let region = dataset.bbox();
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let budget = scale.lr_budget();
    let agg = Aggregate::count_schools();

    let timed_run = |worker_threads: usize| {
        let driver = SampleDriver::new(worker_threads);
        let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
        let started = std::time::Instant::now();
        let estimate = estimator
            .estimate_parallel(&service, &region, &agg, budget, seed, &driver)
            .expect("speedup probe must produce samples");
        (started.elapsed().as_secs_f64(), estimate)
    };

    let (serial_wall_s, serial) = timed_run(1);
    let (parallel_wall_s, parallel) = timed_run(threads);

    SpeedupReport {
        probe: "LR-LBS-AGG COUNT(schools) over the fig11/fig14 USA dataset".to_string(),
        threads,
        query_budget: budget,
        serial_wall_s,
        parallel_wall_s,
        speedup: serial_wall_s / parallel_wall_s.max(1e-9),
        deterministic: serial.value == parallel.value
            && serial.ci95 == parallel.ci95
            && serial.samples == parallel.samples
            && serial.query_cost == parallel.query_cost,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Row;

    #[test]
    fn record_captures_result_metrics() {
        let mut result = ExperimentResult::new("fig14", "COUNT(schools)");
        result.push(
            Row::new()
                .with("budget", 600)
                .with("LR cost", 640)
                .with("LR-LBS-AGG rel err", "0.2"),
        );
        let record = BenchRecord::from_result(&result, 1.5);
        assert_eq!(record.id, "fig14");
        assert_eq!(record.rows, 1);
        assert_eq!(record.max_query_cost, Some(640));
        assert!((record.mean_rel_error.unwrap() - 0.2).abs() < 1e-12);
        assert!((record.wall_time_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new(Scale::Tiny, 2015, 4);
        report.experiments.push(BenchRecord {
            id: "fig11".into(),
            title: "Voronoi".into(),
            wall_time_s: 0.25,
            rows: 7,
            max_query_cost: None,
            mean_rel_error: None,
        });
        let json = report.to_json();
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("fig11"));
        let back: BenchReport = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.experiments.len(), 1);
        assert_eq!(back.seed, 2015);
        assert!(back.speedup.is_none());
    }

    #[test]
    fn speedup_probe_is_deterministic_across_thread_counts() {
        let probe = run_speedup_probe(Scale::Micro, 7, 2);
        assert!(
            probe.deterministic,
            "1-thread and 2-thread probe runs must agree bitwise"
        );
        assert!(probe.serial_wall_s > 0.0 && probe.parallel_wall_s > 0.0);
        assert_eq!(probe.threads, 2);
    }
}
