//! Machine-readable run reports (`BENCH_repro.json`).
//!
//! Every `repro` invocation writes one [`BenchReport`] next to its CSV
//! output: per-experiment wall time, the deepest query cost exercised, the
//! mean relative error, and — when `--threads` asks for more than one worker
//! — a serial-versus-parallel speedup probe with a determinism check. The
//! file is the machine-readable trajectory of the reproduction: successive
//! runs can be diffed to spot performance or accuracy regressions.
//!
//! `EXPERIMENTS.md` at the repository root documents every field.

use serde::{Deserialize, Serialize};

use lbs_core::{Aggregate, EngineReport, LrLbsAgg, LrLbsAggConfig, SampleDriver};
use lbs_service::{ServiceConfig, SimulatedLbs};

use crate::result::ExperimentResult;
use crate::scale::Scale;

/// Summary of one experiment run, as recorded in `BENCH_repro.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Experiment identifier (`fig11` … `table1`).
    pub id: String,
    /// Human-readable title (matches the paper artefact).
    pub title: String,
    /// Wall-clock seconds the experiment took.
    pub wall_time_s: f64,
    /// Number of result rows produced.
    pub rows: usize,
    /// Deepest query cost reported by any row
    /// ([`ExperimentResult::max_reported_cost`]); `None` for experiments
    /// without a cost axis.
    pub max_query_cost: Option<u64>,
    /// Mean of the reported relative errors
    /// ([`ExperimentResult::mean_reported_rel_error`]); `None` for
    /// experiments without an error axis.
    pub mean_rel_error: Option<f64>,
    /// Cell-engine counters summed over the experiment's estimator runs.
    pub engine: Option<EngineReport>,
    /// Cell-cache hit rate over all lookups, if any estimator ran.
    pub cache_hit_rate: Option<f64>,
    /// Mean incorporated candidates (clips) per constructed cell.
    pub mean_clips_per_cell: Option<f64>,
}

impl BenchRecord {
    /// Builds a record from a finished experiment and its measured wall
    /// time.
    pub fn from_result(result: &ExperimentResult, wall_time_s: f64) -> Self {
        BenchRecord {
            id: result.id.clone(),
            title: result.title.clone(),
            wall_time_s,
            rows: result.rows.len(),
            max_query_cost: result.max_reported_cost(),
            mean_rel_error: result.mean_reported_rel_error(),
            engine: result.engine,
            cache_hit_rate: result.engine.as_ref().and_then(|e| e.cache_hit_rate()),
            mean_clips_per_cell: result.engine.as_ref().and_then(|e| e.mean_clips_per_cell()),
        }
    }
}

/// Serial-versus-parallel probe of the sample driver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// What was measured (a COUNT estimation over the experiment dataset).
    pub probe: String,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Query budget of each run.
    pub query_budget: u64,
    /// Wall-clock seconds with 1 worker thread.
    pub serial_wall_s: f64,
    /// Wall-clock seconds with `threads` worker threads.
    pub parallel_wall_s: f64,
    /// `serial_wall_s / parallel_wall_s`.
    pub speedup: f64,
    /// `true` when the serial and parallel runs produced bit-identical
    /// estimates and confidence intervals (they must, by the driver's
    /// determinism contract).
    pub deterministic: bool,
    /// CPUs the OS reported as available (speedups are bounded by this).
    pub available_parallelism: usize,
}

/// Throughput and determinism probe of the multi-tenant serving layer
/// (`lbs-server`): a fixed bundle of small estimation jobs run through the
/// round-robin scheduler, once in submission order and once shuffled, with
/// the per-job estimates compared bitwise.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionBenchReport {
    /// Jobs in the probe bundle.
    pub jobs: usize,
    /// Wall-clock seconds of the in-order run (`run_until_idle`).
    pub wall_s: f64,
    /// Jobs completed per second of the in-order run.
    pub jobs_per_s: f64,
    /// Mean milliseconds from submission to the first anytime estimate
    /// (first snapshot with at least one completed sample).
    pub mean_time_to_first_estimate_ms: f64,
    /// Scheduler ticks (waves) the in-order run served.
    pub ticks: u64,
    /// `true` when the shuffled-submission run reproduced every estimate
    /// bit for bit (the scheduler's determinism contract).
    pub deterministic: bool,
}

/// Shared answer-cache probe of the serving layer: one small `cache =
/// "shared"` scenario submitted twice (under two tenants) through the
/// scheduler, with the replayed job's estimate compared bitwise against the
/// first and the cache counters recorded.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheBenchReport {
    /// Cache hits across both submissions (the replay must produce > 0).
    pub hits: u64,
    /// Cache misses — with single-flight population, the number of distinct
    /// keys the probe touched.
    pub misses: u64,
    /// Entries dropped by dataset-version migrations.
    pub invalidations: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// `true` when the second submission — served from the warm shared
    /// cache under a different tenant — reproduced the first estimate bit
    /// for bit (value, confidence interval, samples, query cost).
    pub deterministic: bool,
}

/// Concurrent-load probe of the event-driven serving layer: N keep-alive
/// clients hammer a loopback server with job submissions (retrying on
/// `429` backpressure), and every admitted job's served result is compared
/// bitwise against a local batch run of the same scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadtestBenchReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Jobs admitted and completed (must equal `clients × jobs_per_client`).
    pub completed_jobs: usize,
    /// Jobs that were never admitted or never finished (must be 0 — `429`s
    /// are retried, so backpressure never drops work).
    pub dropped_jobs: usize,
    /// Wall-clock seconds of the whole run.
    pub wall_s: f64,
    /// Completed jobs per second.
    pub jobs_per_s: f64,
    /// Median submit→first-estimate latency (ms): from the first submission
    /// attempt to the first poll whose snapshot has ≥ 1 completed sample.
    pub p50_first_estimate_ms: f64,
    /// 95th-percentile submit→first-estimate latency (ms).
    pub p95_first_estimate_ms: f64,
    /// 99th-percentile submit→first-estimate latency (ms).
    pub p99_first_estimate_ms: f64,
    /// HTTP requests issued across all clients.
    pub http_requests: u64,
    /// TCP connections the clients opened.
    pub connections: u64,
    /// `1 − connections / http_requests`: fraction of requests that reused
    /// a pooled keep-alive connection.
    pub keep_alive_reuse: f64,
    /// `429`s from the bounded submission queue (clients retried them all).
    pub queue_429: u64,
    /// `429`s from tenant-quota saturation.
    pub quota_429: u64,
    /// The server's submission-queue bound during the run.
    pub queue_depth: usize,
    /// Deepest the server's submission queue got. `429`s are legitimate
    /// only if this reached `queue_depth`.
    pub queue_high_water: usize,
    /// Whether the run verified served results against local batch runs.
    pub check_batch: bool,
    /// `true` when every served result matched its batch twin bitwise
    /// (meaningless unless `check_batch`).
    pub batch_identical: bool,
}

/// Stratified-estimation probe: one COUNT estimation over a Zipf-hotspot
/// dataset run twice at equal budget — once unstratified, once through the
/// stratified Horvitz–Thompson combiner over a density partition — plus a
/// 1-thread-versus-N-thread bitwise determinism check of the stratified
/// run. The headline number is `variance_ratio`: stratification must not
/// inflate the variance of the estimate it buys with the same budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StratifiedBenchReport {
    /// What was measured.
    pub probe: String,
    /// Partitioner of the probe (`density`).
    pub partition: String,
    /// Number of strata.
    pub count: u64,
    /// Allocation policy (`proportional` or `neyman`).
    pub allocation: String,
    /// Query budget of each run (equal for both designs).
    pub budget: u64,
    /// Standard error of the stratified estimate.
    pub stratified_std_error: f64,
    /// Standard error of the unstratified estimate at the same budget.
    pub unstratified_std_error: f64,
    /// `(stratified_std_error / unstratified_std_error)²` — below 1.0 means
    /// stratification reduced the variance.
    pub variance_ratio: f64,
    /// `true` when the 1-thread and N-thread stratified runs produced
    /// bit-identical estimates (the combiner's determinism contract).
    pub deterministic: bool,
}

impl StratifiedBenchReport {
    /// The gate conditions of the stratified block: the thread-count
    /// determinism check must hold, and the variance ratio must be a
    /// positive finite number below 1.0 (stratification that *costs*
    /// accuracy at equal budget is a regression).
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if !self.deterministic {
            violations.push(
                "stratified probe: 1-thread and N-thread runs differ bitwise — \
                 determinism regression in the stratified combiner"
                    .to_string(),
            );
        }
        if !self.variance_ratio.is_finite() || self.variance_ratio <= 0.0 {
            violations.push(format!(
                "stratified probe: variance ratio {} is not a positive finite number",
                self.variance_ratio
            ));
        } else if self.variance_ratio >= 1.0 {
            violations.push(format!(
                "stratified probe: variance ratio {:.3} >= 1.0 — stratification \
                 increased the variance at equal budget",
                self.variance_ratio
            ));
        }
        violations
    }
}

/// Hot-path allocation smoke probe (`repro --alloc-smoke`).
///
/// Builds the same batch of pruned top-k cells twice through
/// [`lbs_geom::top_k_cell_pruned_with`] — once with a fresh
/// [`lbs_geom::ClipScratch`] arena per cell (cold), once with a single arena
/// reused across the batch (warm, measured after one unrecorded warm-up
/// pass) — and counts global-allocator round-trips in each phase. Warm
/// builds must allocate nothing beyond the returned cell's own storage;
/// [`HOT_PATH_ALLOC_BUDGET`] is the committed ceiling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotPathBenchReport {
    /// What was measured.
    pub probe: String,
    /// Cells built per phase.
    pub cells: u64,
    /// `true` when a counting global allocator was observed (a canary
    /// allocation advanced the counter); `false` means the probe ran in a
    /// binary without one and the numbers are all zero.
    pub counted: bool,
    /// Allocations per cell with a fresh arena per build.
    pub cold_allocs_per_cell: f64,
    /// Allocations per cell with one arena reused across the batch
    /// (steady state — this is the gated number).
    pub warm_allocs_per_cell: f64,
    /// The committed ceiling the warm number is gated against.
    pub budget_allocs_per_cell: f64,
}

/// Committed steady-state ceiling for [`HotPathBenchReport`]: allocations
/// per warm-arena cell build. The floor is the returned `TopKCell`'s own
/// storage — allocations that escape the call and cannot be pooled —
/// measured at exactly 1.0 per top-2 cell (against 6.0 cold, where every
/// build also pays the arena's own growth). The headroom up to 4 covers
/// richer results (deeper k carries a larger vertex vector and a convex
/// hull). Everything the scratch arena is supposed to absorb (clip
/// buffers, bisector lists, breakpoint vectors) sits *on top* of this
/// number, so a leak of even one per-build buffer trips the gate.
pub const HOT_PATH_ALLOC_BUDGET: f64 = 4.0;

impl HotPathBenchReport {
    /// The gate conditions of the alloc-smoke block: the counting allocator
    /// must actually have been observed, and the warm (steady-state)
    /// allocations per cell must stay within the committed budget.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if !self.counted {
            violations.push(
                "alloc-smoke probe: no counting allocator observed — the probe \
                 must run inside the repro binary, which installs one"
                    .to_string(),
            );
            return violations;
        }
        if self.warm_allocs_per_cell > self.budget_allocs_per_cell {
            violations.push(format!(
                "alloc-smoke probe: {:.2} allocations per warm-arena cell build \
                 exceeds the committed budget {:.2} — a per-build allocation \
                 crept back into the hot path",
                self.warm_allocs_per_cell, self.budget_allocs_per_cell
            ));
        }
        if self.warm_allocs_per_cell > self.cold_allocs_per_cell {
            violations.push(format!(
                "alloc-smoke probe: warm builds allocate more than cold builds \
                 ({:.2} > {:.2} per cell) — the scratch arena is not being reused",
                self.warm_allocs_per_cell, self.cold_allocs_per_cell
            ));
        }
        violations
    }
}

/// Runs the hot-path allocation smoke probe. `alloc_count` reads the
/// process-wide allocation counter (the repro binary passes its counting
/// `#[global_allocator]`'s count; a plain test binary can pass a constant
/// closure and will get `counted: false` back).
pub fn run_hot_path_probe(
    scale: Scale,
    seed: u64,
    alloc_count: &dyn Fn() -> u64,
) -> HotPathBenchReport {
    use lbs_geom::{sort_by_distance, top_k_cell_pruned_with, ClipScratch, Point};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Canary: prove the counter actually moves when the heap is used.
    let before_canary = alloc_count();
    let canary = std::hint::black_box(vec![0u8; 64]);
    let counted = alloc_count() > before_canary;
    drop(canary);

    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = lbs_data::ScenarioBuilder::usa_pois(scale.poi_count()).build(&mut rng);
    let region = dataset.bbox();
    let points: Vec<Point> = dataset.tuples().iter().map(|t| t.location).collect();

    let cells = 200usize.min(points.len());
    let neighbor_limit = 64usize;
    // Per-site ascending candidate lists, prepared outside the measured
    // phases so only the construction itself is counted.
    let site_views: Vec<(Point, Vec<Point>)> = points[..cells]
        .iter()
        .map(|site| {
            let mut others: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| !p.approx_eq(site))
                .collect();
            sort_by_distance(site, &mut others);
            others.truncate(neighbor_limit);
            (*site, others)
        })
        .collect();

    let build_all = |scratch_per_cell: bool, scratch: &mut ClipScratch| {
        let mut area_sum = 0.0;
        for (site, others) in &site_views {
            let mut fresh = ClipScratch::new();
            let arena = if scratch_per_cell {
                &mut fresh
            } else {
                &mut *scratch
            };
            let (cell, _) = top_k_cell_pruned_with(arena, site, others, 2, &region, true);
            area_sum += cell.area;
        }
        std::hint::black_box(area_sum)
    };

    let mut scratch = ClipScratch::new();
    // Cold phase: a fresh arena per cell pays the arena's own growth every
    // build.
    let cold_before = alloc_count();
    build_all(true, &mut scratch);
    let cold_allocs = alloc_count() - cold_before;
    // Warm-up pass: grow the shared arena to steady-state capacity off the
    // record, then measure the warm phase.
    build_all(false, &mut scratch);
    let warm_before = alloc_count();
    build_all(false, &mut scratch);
    let warm_allocs = alloc_count() - warm_before;

    HotPathBenchReport {
        probe: format!(
            "{cells} pruned top-2 cells over the USA dataset, {neighbor_limit} candidates each"
        ),
        cells: cells as u64,
        counted,
        cold_allocs_per_cell: cold_allocs as f64 / cells.max(1) as f64,
        warm_allocs_per_cell: warm_allocs as f64 / cells.max(1) as f64,
        budget_allocs_per_cell: HOT_PATH_ALLOC_BUDGET,
    }
}

impl LoadtestBenchReport {
    /// The gate conditions of the loadtest block (shared between
    /// [`gate_against`] and the `repro loadtest` exit code):
    ///
    /// * no dropped jobs — backpressure must never lose admitted work,
    /// * `429`s only after the queue actually filled (high-water at the
    ///   bound), and
    /// * when batch checking ran, bitwise equality of served vs batch.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.dropped_jobs > 0 {
            violations.push(format!(
                "loadtest probe: {} jobs dropped under concurrent load — \
                 backpressure must retry, never lose work",
                self.dropped_jobs
            ));
        }
        if self.queue_429 > 0 && self.queue_high_water < self.queue_depth {
            violations.push(format!(
                "loadtest probe: {} queue 429s but high-water {} never reached \
                 the bound {} — premature backpressure",
                self.queue_429, self.queue_high_water, self.queue_depth
            ));
        }
        if self.check_batch && !self.batch_identical {
            violations.push(
                "loadtest probe: a served result differed bitwise from its local \
                 batch run — determinism regression under concurrent load"
                    .to_string(),
            );
        }
        violations
    }
}

/// The complete content of `BENCH_repro.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version of this file.
    pub schema_version: u32,
    /// Scale preset the run used.
    pub scale: Scale,
    /// Root seed of the run.
    pub seed: u64,
    /// Worker threads of the run.
    pub threads: usize,
    /// Per-experiment summaries, in run order.
    pub experiments: Vec<BenchRecord>,
    /// Present when the run was asked for more than one thread.
    pub speedup: Option<SpeedupReport>,
    /// Session-throughput probe of the serving layer (absent in reports
    /// written before the serving layer existed, and in scenario-mode runs).
    pub sessions: Option<SessionBenchReport>,
    /// Shared answer-cache probe of the serving layer (absent in reports
    /// written before the cache existed, and in scenario-mode runs).
    pub cache: Option<CacheBenchReport>,
    /// Concurrent-load probe of the event-driven serving layer (absent in
    /// reports written before the event loop existed, and in scenario-mode
    /// runs).
    pub loadtest: Option<LoadtestBenchReport>,
    /// Stratified-estimation probe (absent in reports written before the
    /// stratified combiner existed, and in scenario-mode runs).
    pub stratified: Option<StratifiedBenchReport>,
    /// Hot-path allocation smoke probe (present only when the run was asked
    /// for `--alloc-smoke`).
    pub hot_path: Option<HotPathBenchReport>,
}

impl BenchReport {
    /// Creates an empty report shell.
    pub fn new(scale: Scale, seed: u64, threads: usize) -> Self {
        BenchReport {
            schema_version: 1,
            scale,
            seed,
            threads,
            experiments: Vec::new(),
            speedup: None,
            sessions: None,
            cache: None,
            loadtest: None,
            stratified: None,
            hot_path: None,
        }
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Relative-error headroom of [`gate_against`]: the fresh error may exceed
/// the reference by half of itself plus this absolute slack before the gate
/// trips (seeded runs are deterministic, but legitimate numeric changes —
/// e.g. a different clip order — shift low-sample errors a little).
pub const GATE_REL_ERROR_FACTOR: f64 = 1.5;
/// Absolute relative-error slack of [`gate_against`].
pub const GATE_REL_ERROR_SLACK: f64 = 0.08;
/// Query-cost headroom factor of [`gate_against`].
pub const GATE_COST_FACTOR: f64 = 1.15;
/// Absolute query-cost slack of [`gate_against`].
pub const GATE_COST_SLACK: u64 = 50;

/// Compares a fresh `BENCH_repro.json` against a committed reference and
/// returns the list of regressions (empty = gate passes).
///
/// Checks, per experiment present in the reference:
///
/// * the mean relative error must stay within
///   `ref × GATE_REL_ERROR_FACTOR + GATE_REL_ERROR_SLACK`,
/// * the deepest query cost must stay within
///   `ref × GATE_COST_FACTOR + GATE_COST_SLACK`,
///
/// plus, when the fresh run carried a speedup probe, its determinism check
/// must have passed. Wall times are machine-dependent and deliberately not
/// gated; the bench-regression CI job uploads the fresh JSON as an artifact
/// so they can be eyeballed.
pub fn gate_against(fresh: &BenchReport, reference: &BenchReport) -> Vec<String> {
    let mut violations = Vec::new();
    if fresh.scale != reference.scale {
        // lbs-lint: allow(nondet-debug-fmt, reason = "Scale is a fieldless enum; Debug prints a fixed variant name")
        violations.push(format!(
            "scale mismatch: fresh {:?} vs reference {:?} — not comparable",
            fresh.scale, reference.scale
        ));
        return violations;
    }
    if fresh.seed != reference.seed {
        violations.push(format!(
            "seed mismatch: fresh {} vs reference {} — not comparable",
            fresh.seed, reference.seed
        ));
        return violations;
    }
    for reference_record in &reference.experiments {
        let Some(record) = fresh
            .experiments
            .iter()
            .find(|r| r.id == reference_record.id)
        else {
            violations.push(format!(
                "experiment {} missing from fresh run",
                reference_record.id
            ));
            continue;
        };
        match (record.mean_rel_error, reference_record.mean_rel_error) {
            (Some(fresh_err), Some(ref_err)) => {
                // A zero or non-finite reference (e.g. a scenario whose mean
                // relative error is exactly 0) makes the multiplicative
                // headroom meaningless; fall back to the absolute slack
                // alone instead of comparing against a 0/NaN/inf bound.
                let bound = if ref_err.is_finite() && ref_err > 0.0 {
                    ref_err * GATE_REL_ERROR_FACTOR + GATE_REL_ERROR_SLACK
                } else {
                    GATE_REL_ERROR_SLACK
                };
                // `NaN > bound` is false, so a NaN fresh metric would slip
                // through a plain comparison; treat it as a regression.
                if !fresh_err.is_finite() {
                    violations.push(format!(
                        "{}: mean relative error is not finite ({fresh_err}) — reference {ref_err:.3}",
                        record.id
                    ));
                } else if fresh_err > bound {
                    violations.push(format!(
                        "{}: mean relative error regressed: {fresh_err:.3} > bound {bound:.3} (reference {ref_err:.3})",
                        record.id
                    ));
                }
            }
            // A metric the reference has but the fresh run lost (e.g. every
            // estimate went non-finite) is itself a regression, not a pass.
            (None, Some(ref_err)) => violations.push(format!(
                "{}: mean relative error missing from fresh run (reference {ref_err:.3})",
                record.id
            )),
            _ => {}
        }
        match (record.max_query_cost, reference_record.max_query_cost) {
            (Some(fresh_cost), Some(ref_cost)) => {
                let bound = (ref_cost as f64 * GATE_COST_FACTOR) as u64 + GATE_COST_SLACK;
                if fresh_cost > bound {
                    violations.push(format!(
                        "{}: max query cost regressed: {fresh_cost} > bound {bound} (reference {ref_cost})",
                        record.id
                    ));
                }
            }
            (None, Some(ref_cost)) => violations.push(format!(
                "{}: max query cost missing from fresh run (reference {ref_cost})",
                record.id
            )),
            _ => {}
        }
    }
    if let Some(probe) = &fresh.speedup {
        if !probe.deterministic {
            violations.push(
                "speedup probe: serial and parallel estimates differ — determinism regression"
                    .to_string(),
            );
        }
    }
    if let Some(sessions) = &fresh.sessions {
        if !sessions.deterministic {
            violations.push(
                "session probe: shuffled-submission scheduler run produced different \
                 estimates — determinism regression"
                    .to_string(),
            );
        }
    }
    if let Some(cache) = &fresh.cache {
        if !cache.deterministic {
            violations.push(
                "cache probe: replaying a submission through the warm shared cache \
                 changed its estimate — determinism regression"
                    .to_string(),
            );
        }
        if cache.hits == 0 {
            violations.push(
                "cache probe: replaying a submission produced zero cache hits — the \
                 shared answer cache is not serving"
                    .to_string(),
            );
        }
    }
    if let Some(loadtest) = &fresh.loadtest {
        violations.extend(loadtest.violations());
    }
    if let Some(stratified) = &fresh.stratified {
        violations.extend(stratified.violations());
    }
    if let Some(hot_path) = &fresh.hot_path {
        violations.extend(hot_path.violations());
    }
    violations
}

/// Runs the serial-versus-parallel speedup probe: one COUNT estimation over
/// the standard experiment dataset, once with 1 worker and once with
/// `threads` workers, verifying that the two estimates are bit-identical.
///
/// The probe is the parallel-scaling acceptance check of the sample driver;
/// `repro --threads N` (N > 1) runs it automatically and records the result
/// in `BENCH_repro.json`. Speedups are bounded by
/// `available_parallelism` — on a single-core machine the expected value
/// is ~1.0.
pub fn run_speedup_probe(scale: Scale, seed: u64, threads: usize) -> SpeedupReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = lbs_data::ScenarioBuilder::usa_pois(scale.poi_count())
        .with_starbucks(scale.poi_count() / 40)
        .build(&mut rng);
    let region = dataset.bbox();
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let budget = scale.lr_budget();
    let agg = Aggregate::count_schools();

    let timed_run = |worker_threads: usize| {
        let driver = SampleDriver::new(worker_threads);
        let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
        let started = std::time::Instant::now();
        let estimate = estimator
            .estimate_parallel(&service, &region, &agg, budget, seed, &driver)
            .expect("speedup probe must produce samples");
        (started.elapsed().as_secs_f64(), estimate)
    };

    let (serial_wall_s, serial) = timed_run(1);
    let (parallel_wall_s, parallel) = timed_run(threads);

    SpeedupReport {
        probe: "LR-LBS-AGG COUNT(schools) over the fig11/fig14 USA dataset".to_string(),
        threads,
        query_budget: budget,
        serial_wall_s,
        parallel_wall_s,
        speedup: serial_wall_s / parallel_wall_s.max(1e-9),
        deterministic: serial.value == parallel.value
            && serial.ci95 == parallel.ci95
            && serial.samples == parallel.samples
            && serial.query_cost == parallel.query_cost,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs the stratified-estimation probe: a COUNT over a Zipf-hotspot
/// dataset (the spatial skew stratification exists for), estimated once
/// unstratified and once through a density-partitioned
/// [`lbs_core::StratifiedSession`] at the same budget and root seed, plus a
/// 1-thread-versus-`threads`-thread bitwise determinism check of the
/// stratified run. `repro --threads N` (N > 1) runs it automatically and
/// records the result in `BENCH_repro.json`; [`gate_against`] fails the
/// gate unless the variance ratio stays below 1.0.
pub fn run_stratified_probe(scale: Scale, seed: u64, threads: usize) -> StratifiedBenchReport {
    use lbs_core::{
        AllocationPolicy, LrSession, SessionConfig, StratifiedSession, StratumEstimator,
    };
    use lbs_data::{DensityGrid, Stratifier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let dataset =
        lbs_data::ScenarioBuilder::zipf_hotspot_pois(scale.poi_count(), 8, 1.1).build(&mut rng);
    let region = dataset.bbox();
    let count = 8usize;
    let grid = DensityGrid::from_dataset(&dataset, count.saturating_mul(4).max(32), 1, 0.1);
    let strata = Stratifier::density(grid, count).strata(&region);
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let budget = scale.lr_budget();
    let agg = Aggregate::count_all();

    let run_flat = || {
        let cfg = SessionConfig::new(budget, seed);
        let mut session = LrSession::new(
            &service,
            &region,
            &agg,
            LrLbsAggConfig::default(),
            lbs_core::lr::History::new(),
            cfg,
        );
        while !session.is_finished() {
            session.step();
        }
        session
            .finalize()
            .expect("flat probe run must produce samples")
    };
    let run_stratified = |worker_threads: usize| {
        let cfg = SessionConfig::new(budget, seed).with_threads(worker_threads);
        let mut session = StratifiedSession::new(
            &service,
            &region,
            &agg,
            StratumEstimator::Lr(LrLbsAggConfig::default()),
            strata.clone(),
            AllocationPolicy::Neyman,
            cfg,
        );
        while !session.is_finished() {
            session.step();
        }
        session
            .finalize()
            .expect("stratified probe run must produce samples")
    };

    let flat = run_flat();
    let serial = run_stratified(1);
    let parallel = run_stratified(threads.max(2));
    let ratio = (serial.std_error / flat.std_error).powi(2);

    StratifiedBenchReport {
        probe: "LR-LBS-AGG COUNT over a Zipf-hotspot dataset, 8 density strata vs flat".to_string(),
        partition: "density".to_string(),
        count: count as u64,
        allocation: "neyman".to_string(),
        budget,
        stratified_std_error: serial.std_error,
        unstratified_std_error: flat.std_error,
        variance_ratio: ratio,
        deterministic: serial.value == parallel.value
            && serial.ci95 == parallel.ci95
            && serial.samples == parallel.samples
            && serial.query_cost == parallel.query_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Row;

    #[test]
    fn record_captures_result_metrics() {
        let mut result = ExperimentResult::new("fig14", "COUNT(schools)");
        result.push(
            Row::new()
                .with("budget", 600)
                .with("LR cost", 640)
                .with("LR-LBS-AGG rel err", "0.2"),
        );
        let record = BenchRecord::from_result(&result, 1.5);
        assert_eq!(record.id, "fig14");
        assert_eq!(record.rows, 1);
        assert_eq!(record.max_query_cost, Some(640));
        assert!((record.mean_rel_error.unwrap() - 0.2).abs() < 1e-12);
        assert!((record.wall_time_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new(Scale::Tiny, 2015, 4);
        report.experiments.push(BenchRecord {
            id: "fig11".into(),
            title: "Voronoi".into(),
            wall_time_s: 0.25,
            rows: 7,
            max_query_cost: None,
            mean_rel_error: None,
            engine: None,
            cache_hit_rate: None,
            mean_clips_per_cell: None,
        });
        let json = report.to_json();
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("fig11"));
        let back: BenchReport = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.experiments.len(), 1);
        assert_eq!(back.seed, 2015);
        assert!(back.speedup.is_none());
    }

    fn record(id: &str, err: Option<f64>, cost: Option<u64>) -> BenchRecord {
        BenchRecord {
            id: id.into(),
            title: id.into(),
            wall_time_s: 1.0,
            rows: 1,
            max_query_cost: cost,
            mean_rel_error: err,
            engine: None,
            cache_hit_rate: None,
            mean_clips_per_cell: None,
        }
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let mut reference = BenchReport::new(Scale::Small, 2015, 1);
        reference
            .experiments
            .push(record("fig14", Some(0.3), Some(4200)));
        let violations = gate_against(&reference, &reference);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn gate_flags_error_and_cost_regressions_and_missing_experiments() {
        let mut reference = BenchReport::new(Scale::Small, 2015, 1);
        reference
            .experiments
            .push(record("fig14", Some(0.3), Some(4200)));
        reference.experiments.push(record("fig15", Some(0.2), None));
        let mut fresh = BenchReport::new(Scale::Small, 2015, 1);
        // Error way above 0.3 * 1.5 + 0.08, cost way above 4200 * 1.15 + 50.
        fresh
            .experiments
            .push(record("fig14", Some(0.9), Some(9000)));
        let violations = gate_against(&fresh, &reference);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("relative error")));
        assert!(violations.iter().any(|v| v.contains("query cost")));
        assert!(violations.iter().any(|v| v.contains("missing")));
    }

    #[test]
    fn gate_zero_reference_uses_absolute_tolerance() {
        // A reference with mean relative error exactly 0 (a scenario the
        // estimator nails) must not produce a 0-sized or NaN bound: fresh
        // runs within the absolute slack pass, runs beyond it fail.
        let mut reference = BenchReport::new(Scale::Small, 2015, 1);
        reference
            .experiments
            .push(record("scenario_exact", Some(0.0), Some(100)));

        let mut within = BenchReport::new(Scale::Small, 2015, 1);
        within.experiments.push(record(
            "scenario_exact",
            Some(GATE_REL_ERROR_SLACK * 0.5),
            Some(100),
        ));
        assert!(gate_against(&within, &reference).is_empty());

        let mut beyond = BenchReport::new(Scale::Small, 2015, 1);
        beyond.experiments.push(record(
            "scenario_exact",
            Some(GATE_REL_ERROR_SLACK * 2.0),
            Some(100),
        ));
        let violations = gate_against(&beyond, &reference);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("regressed"));
    }

    #[test]
    fn gate_flags_non_finite_fresh_metrics() {
        // `NaN > bound` is false, so a naive comparison would silently pass
        // a fresh run whose error collapsed to NaN/inf; the gate must flag
        // it instead.
        let mut reference = BenchReport::new(Scale::Small, 2015, 1);
        reference
            .experiments
            .push(record("fig14", Some(0.3), Some(4200)));
        for bad in [f64::NAN, f64::INFINITY] {
            let mut fresh = BenchReport::new(Scale::Small, 2015, 1);
            fresh
                .experiments
                .push(record("fig14", Some(bad), Some(4200)));
            let violations = gate_against(&fresh, &reference);
            assert_eq!(violations.len(), 1, "{bad}: {violations:?}");
            assert!(violations[0].contains("not finite"), "{bad}");
        }
        // A NaN *reference* degrades to the absolute tolerance rather than
        // silently passing everything.
        let mut nan_ref = BenchReport::new(Scale::Small, 2015, 1);
        nan_ref
            .experiments
            .push(record("fig14", Some(f64::NAN), Some(4200)));
        let mut fresh = BenchReport::new(Scale::Small, 2015, 1);
        fresh
            .experiments
            .push(record("fig14", Some(1.0), Some(4200)));
        assert!(!gate_against(&fresh, &nan_ref).is_empty());
    }

    #[test]
    fn gate_flags_metrics_lost_by_the_fresh_run() {
        let mut reference = BenchReport::new(Scale::Small, 2015, 1);
        reference
            .experiments
            .push(record("fig14", Some(0.3), Some(4200)));
        let mut fresh = BenchReport::new(Scale::Small, 2015, 1);
        fresh.experiments.push(record("fig14", None, None));
        let violations = gate_against(&fresh, &reference);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| v.contains("missing from fresh run")));
    }

    #[test]
    fn gate_rejects_incomparable_runs_and_broken_determinism() {
        let reference = BenchReport::new(Scale::Small, 2015, 1);
        let other_scale = BenchReport::new(Scale::Tiny, 2015, 1);
        assert!(gate_against(&other_scale, &reference)[0].contains("scale mismatch"));
        let other_seed = BenchReport::new(Scale::Small, 7, 1);
        assert!(gate_against(&other_seed, &reference)[0].contains("seed mismatch"));
        let mut broken = BenchReport::new(Scale::Small, 2015, 2);
        broken.speedup = Some(SpeedupReport {
            probe: "probe".into(),
            threads: 2,
            query_budget: 100,
            serial_wall_s: 1.0,
            parallel_wall_s: 0.6,
            speedup: 1.6,
            deterministic: false,
            available_parallelism: 2,
        });
        assert!(gate_against(&broken, &reference)
            .iter()
            .any(|v| v.contains("determinism")));
    }

    #[test]
    fn gate_checks_the_cache_probe() {
        let reference = BenchReport::new(Scale::Small, 2015, 1);
        let probe = |hits: u64, deterministic: bool| CacheBenchReport {
            hits,
            misses: 40,
            invalidations: 0,
            evictions: 0,
            hit_rate: hits as f64 / (hits + 40) as f64,
            deterministic,
        };
        let mut healthy = BenchReport::new(Scale::Small, 2015, 1);
        healthy.cache = Some(probe(40, true));
        assert!(gate_against(&healthy, &reference).is_empty());

        let mut nondeterministic = BenchReport::new(Scale::Small, 2015, 1);
        nondeterministic.cache = Some(probe(40, false));
        assert!(gate_against(&nondeterministic, &reference)
            .iter()
            .any(|v| v.contains("cache probe") && v.contains("determinism")));

        let mut cold = BenchReport::new(Scale::Small, 2015, 1);
        cold.cache = Some(probe(0, true));
        assert!(gate_against(&cold, &reference)
            .iter()
            .any(|v| v.contains("zero cache hits")));
    }

    #[test]
    fn gate_checks_the_loadtest_probe() {
        let reference = BenchReport::new(Scale::Small, 2015, 1);
        let probe = |dropped: usize, queue_429: u64, high_water: usize, identical: bool| {
            LoadtestBenchReport {
                clients: 4,
                jobs_per_client: 3,
                completed_jobs: 12 - dropped,
                dropped_jobs: dropped,
                wall_s: 1.0,
                jobs_per_s: 12.0,
                p50_first_estimate_ms: 5.0,
                p95_first_estimate_ms: 9.0,
                p99_first_estimate_ms: 9.5,
                http_requests: 60,
                connections: 4,
                keep_alive_reuse: 1.0 - 4.0 / 60.0,
                queue_429,
                quota_429: 0,
                queue_depth: 8,
                queue_high_water: high_water,
                check_batch: true,
                batch_identical: identical,
            }
        };
        let mut healthy = BenchReport::new(Scale::Small, 2015, 1);
        healthy.loadtest = Some(probe(0, 5, 8, true));
        assert!(gate_against(&healthy, &reference).is_empty());

        let mut dropped = BenchReport::new(Scale::Small, 2015, 1);
        dropped.loadtest = Some(probe(2, 0, 8, true));
        assert!(gate_against(&dropped, &reference)
            .iter()
            .any(|v| v.contains("dropped")));

        // 429s without the queue ever filling: the server pushed back
        // before it had to.
        let mut premature = BenchReport::new(Scale::Small, 2015, 1);
        premature.loadtest = Some(probe(0, 5, 3, true));
        assert!(gate_against(&premature, &reference)
            .iter()
            .any(|v| v.contains("premature backpressure")));

        let mut divergent = BenchReport::new(Scale::Small, 2015, 1);
        divergent.loadtest = Some(probe(0, 0, 0, false));
        assert!(gate_against(&divergent, &reference)
            .iter()
            .any(|v| v.contains("determinism regression under concurrent load")));
    }

    #[test]
    fn gate_checks_the_stratified_probe() {
        let reference = BenchReport::new(Scale::Small, 2015, 1);
        let probe = |ratio: f64, deterministic: bool| StratifiedBenchReport {
            probe: "probe".into(),
            partition: "density".into(),
            count: 6,
            allocation: "proportional".into(),
            budget: 500,
            stratified_std_error: ratio.sqrt(),
            unstratified_std_error: 1.0,
            variance_ratio: ratio,
            deterministic,
        };
        let mut healthy = BenchReport::new(Scale::Small, 2015, 1);
        healthy.stratified = Some(probe(0.7, true));
        assert!(gate_against(&healthy, &reference).is_empty());

        let mut worse = BenchReport::new(Scale::Small, 2015, 1);
        worse.stratified = Some(probe(1.2, true));
        assert!(gate_against(&worse, &reference)
            .iter()
            .any(|v| v.contains("increased the variance")));

        let mut broken = BenchReport::new(Scale::Small, 2015, 1);
        broken.stratified = Some(probe(f64::NAN, true));
        assert!(gate_against(&broken, &reference)
            .iter()
            .any(|v| v.contains("not a positive finite number")));

        let mut nondeterministic = BenchReport::new(Scale::Small, 2015, 1);
        nondeterministic.stratified = Some(probe(0.7, false));
        assert!(gate_against(&nondeterministic, &reference)
            .iter()
            .any(|v| v.contains("stratified combiner")));
    }

    #[test]
    fn stratified_probe_reduces_variance_and_stays_deterministic() {
        let probe = run_stratified_probe(Scale::Micro, 2015, 2);
        assert!(
            probe.deterministic,
            "1-thread and 2-thread stratified runs must agree bitwise"
        );
        assert!(
            probe.variance_ratio.is_finite() && probe.variance_ratio > 0.0,
            "variance ratio {} must be positive finite",
            probe.variance_ratio
        );
        assert!(
            probe.variance_ratio < 1.0,
            "stratification must not inflate variance at equal budget (ratio {})",
            probe.variance_ratio
        );
    }

    #[test]
    fn speedup_probe_is_deterministic_across_thread_counts() {
        let probe = run_speedup_probe(Scale::Micro, 7, 2);
        assert!(
            probe.deterministic,
            "1-thread and 2-thread probe runs must agree bitwise"
        );
        assert!(probe.serial_wall_s > 0.0 && probe.parallel_wall_s > 0.0);
        assert_eq!(probe.threads, 2);
    }
}
