//! Experiment result containers and rendering.

use lbs_core::EngineReport;
use serde::{Deserialize, Serialize};

/// One row of an experiment result: column name → value pairs in column
/// order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Row {
    /// `(column, value)` pairs in display order.
    pub cells: Vec<(String, String)>,
}

impl Row {
    /// Creates an empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Adds a string cell.
    pub fn with(mut self, column: &str, value: impl ToString) -> Self {
        self.cells.push((column.to_string(), value.to_string()));
        self
    }

    /// Adds a floating point cell with a sensible number of digits.
    pub fn with_f64(mut self, column: &str, value: f64) -> Self {
        let formatted = if value.abs() >= 1000.0 {
            format!("{value:.0}")
        } else if value.abs() >= 1.0 {
            format!("{value:.2}")
        } else {
            format!("{value:.4}")
        };
        self.cells.push((column.to_string(), formatted));
        self
    }

    /// Value of a column, if present.
    pub fn get(&self, column: &str) -> Option<&str> {
        self.cells
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| v.as_str())
    }
}

/// The result of one experiment: identifier, human-readable title and rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Identifier (e.g. `fig14`, `table1`).
    pub id: String,
    /// Title matching the paper artefact.
    pub title: String,
    /// Free-form notes (parameters used, caveats).
    pub notes: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Cell-engine counters summed over every estimator run of the
    /// experiment (`None` for experiments that run no estimator).
    pub engine: Option<EngineReport>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            notes: Vec::new(),
            rows: Vec::new(),
            engine: None,
        }
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Accumulates one estimator run's cell-engine counters.
    pub fn add_engine(&mut self, report: &EngineReport) {
        self.engine
            .get_or_insert_with(EngineReport::default)
            .add(report);
    }

    /// One-line cache/clip summary for console output, if any estimator ran.
    pub fn engine_summary_line(&self) -> Option<String> {
        let engine = self.engine.as_ref()?;
        let hit_rate = engine
            .cache_hit_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".to_string());
        let clips = engine
            .mean_clips_per_cell()
            .map(|c| format!("{c:.1}"))
            .unwrap_or_else(|| "n/a".to_string());
        let pruned = engine
            .pruned_fraction()
            .map(|p| format!("{:.1}%", p * 100.0))
            .unwrap_or_else(|| "n/a".to_string());
        Some(format!(
            "cells {} | clips/cell {} | candidates pruned {} | cache hit rate {} | mc certified {}",
            engine.cells_built, clips, pruned, hit_rate, engine.mc_certified
        ))
    }

    /// Adds a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Column names, taken from the first row.
    pub fn columns(&self) -> Vec<String> {
        self.rows
            .first()
            .map(|r| r.cells.iter().map(|(c, _)| c.clone()).collect())
            .unwrap_or_default()
    }

    /// Renders the result as a CSV document.
    pub fn to_csv(&self) -> String {
        let columns = self.columns();
        let mut out = String::new();
        out.push_str(&columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = columns
                .iter()
                .map(|c| row.get(c).unwrap_or("").replace(',', ";"))
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// The largest query cost reported anywhere in the rows, scanned from
    /// columns whose name mentions `cost` or `budget`.
    ///
    /// This is the summary statistic `BENCH_repro.json` records per
    /// experiment: "how deep into its query ladder did this run go". A sum
    /// would double count (convergence traces report *running* costs), so
    /// the maximum is the meaningful scalar. `None` when no row carries a
    /// parseable cost.
    pub fn max_reported_cost(&self) -> Option<u64> {
        let mut max: Option<u64> = None;
        for row in &self.rows {
            for (column, value) in &row.cells {
                let name = column.to_ascii_lowercase();
                if !(name.contains("cost") || name.contains("budget")) {
                    continue;
                }
                if let Ok(v) = value.parse::<f64>() {
                    if v.is_finite() && v >= 0.0 {
                        let v = v.round() as u64;
                        max = Some(max.map_or(v, |m| m.max(v)));
                    }
                }
            }
        }
        max
    }

    /// Mean of every relative-error cell in the rows, scanned from columns
    /// whose name mentions `rel err`/`rel error`.
    ///
    /// `None` for experiments that do not report relative errors (e.g. the
    /// Voronoi-decomposition statistics of Figure 11).
    pub fn mean_reported_rel_error(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0u64;
        for row in &self.rows {
            for (column, value) in &row.cells {
                let name = column.to_ascii_lowercase();
                if !(name.contains("rel err") || name.contains("rel error")) {
                    continue;
                }
                if let Ok(v) = value.parse::<f64>() {
                    if v.is_finite() {
                        sum += v;
                        count += 1;
                    }
                }
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Renders the result as an aligned text table (for terminal output).
    pub fn to_table(&self) -> String {
        let columns = self.columns();
        if columns.is_empty() {
            return format!("{} — {} (no rows)\n", self.id, self.title);
        }
        let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in columns.iter().enumerate() {
                widths[i] = widths[i].max(row.get(c).unwrap_or("").len());
            }
        }
        let mut out = format!("{} — {}\n", self.id, self.title);
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        let header: Vec<String> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&format!("  {}\n", header.join("  ")));
        for row in &self.rows {
            let line: Vec<String> = columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", row.get(c).unwrap_or(""), width = widths[i]))
                .collect();
            out.push_str(&format!("  {}\n", line.join("  ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_building_and_lookup() {
        let r = Row::new()
            .with("algo", "LR-LBS-AGG")
            .with_f64("rel_error", 0.123456)
            .with_f64("cost", 12345.0);
        assert_eq!(r.get("algo"), Some("LR-LBS-AGG"));
        assert_eq!(r.get("rel_error"), Some("0.1235"));
        assert_eq!(r.get("cost"), Some("12345"));
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn csv_and_table_rendering() {
        let mut res = ExperimentResult::new("figX", "demo");
        res.note("synthetic");
        res.push(Row::new().with("a", 1).with("b", "x,y"));
        res.push(Row::new().with("a", 2).with("b", "z"));
        let csv = res.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("1,x;y"));
        let table = res.to_table();
        assert!(table.contains("figX — demo"));
        assert!(table.contains("note: synthetic"));
        assert_eq!(res.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn empty_result_renders() {
        let res = ExperimentResult::new("fig0", "empty");
        assert!(res.to_table().contains("no rows"));
        assert_eq!(res.to_csv(), "\n");
    }

    #[test]
    fn metric_extraction_scans_cost_and_error_columns() {
        let mut res = ExperimentResult::new("figX", "metrics");
        res.push(
            Row::new()
                .with("budget", 500)
                .with("LR cost", 620)
                .with("LR-LBS-AGG rel err", "0.250")
                .with("LNR-LBS-AGG rel err", "0.750"),
        );
        res.push(
            Row::new()
                .with("budget", 1000)
                .with("LR cost", 1100)
                .with("LR-LBS-AGG rel err", "0.100")
                .with("LNR-LBS-AGG rel err", "0.300"),
        );
        assert_eq!(res.max_reported_cost(), Some(1100));
        let mean = res.mean_reported_rel_error().unwrap();
        assert!((mean - 0.35).abs() < 1e-12, "mean was {mean}");

        // Non-numeric and absent columns degrade gracefully.
        let mut none = ExperimentResult::new("fig0", "no metrics");
        none.push(Row::new().with("statistic", "median"));
        assert_eq!(none.max_reported_cost(), None);
        assert_eq!(none.mean_reported_rel_error(), None);
    }
}
