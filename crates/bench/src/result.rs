//! Experiment result containers and rendering.

use serde::{Deserialize, Serialize};

/// One row of an experiment result: column name → value pairs in column
/// order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Row {
    /// `(column, value)` pairs in display order.
    pub cells: Vec<(String, String)>,
}

impl Row {
    /// Creates an empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Adds a string cell.
    pub fn with(mut self, column: &str, value: impl ToString) -> Self {
        self.cells.push((column.to_string(), value.to_string()));
        self
    }

    /// Adds a floating point cell with a sensible number of digits.
    pub fn with_f64(mut self, column: &str, value: f64) -> Self {
        let formatted = if value.abs() >= 1000.0 {
            format!("{value:.0}")
        } else if value.abs() >= 1.0 {
            format!("{value:.2}")
        } else {
            format!("{value:.4}")
        };
        self.cells.push((column.to_string(), formatted));
        self
    }

    /// Value of a column, if present.
    pub fn get(&self, column: &str) -> Option<&str> {
        self.cells
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| v.as_str())
    }
}

/// The result of one experiment: identifier, human-readable title and rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Identifier (e.g. `fig14`, `table1`).
    pub id: String,
    /// Title matching the paper artefact.
    pub title: String,
    /// Free-form notes (parameters used, caveats).
    pub notes: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            notes: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Adds a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Column names, taken from the first row.
    pub fn columns(&self) -> Vec<String> {
        self.rows
            .first()
            .map(|r| r.cells.iter().map(|(c, _)| c.clone()).collect())
            .unwrap_or_default()
    }

    /// Renders the result as a CSV document.
    pub fn to_csv(&self) -> String {
        let columns = self.columns();
        let mut out = String::new();
        out.push_str(&columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = columns
                .iter()
                .map(|c| row.get(c).unwrap_or("").replace(',', ";"))
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the result as an aligned text table (for terminal output).
    pub fn to_table(&self) -> String {
        let columns = self.columns();
        if columns.is_empty() {
            return format!("{} — {} (no rows)\n", self.id, self.title);
        }
        let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in columns.iter().enumerate() {
                widths[i] = widths[i].max(row.get(c).unwrap_or("").len());
            }
        }
        let mut out = format!("{} — {}\n", self.id, self.title);
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        let header: Vec<String> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&format!("  {}\n", header.join("  ")));
        for row in &self.rows {
            let line: Vec<String> = columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", row.get(c).unwrap_or(""), width = widths[i]))
                .collect();
            out.push_str(&format!("  {}\n", line.join("  ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_building_and_lookup() {
        let r = Row::new()
            .with("algo", "LR-LBS-AGG")
            .with_f64("rel_error", 0.123456)
            .with_f64("cost", 12345.0);
        assert_eq!(r.get("algo"), Some("LR-LBS-AGG"));
        assert_eq!(r.get("rel_error"), Some("0.1235"));
        assert_eq!(r.get("cost"), Some("12345"));
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn csv_and_table_rendering() {
        let mut res = ExperimentResult::new("figX", "demo");
        res.note("synthetic");
        res.push(Row::new().with("a", 1).with("b", "x,y"));
        res.push(Row::new().with("a", 2).with("b", "z"));
        let csv = res.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("1,x;y"));
        let table = res.to_table();
        assert!(table.contains("figX — demo"));
        assert!(table.contains("note: synthetic"));
        assert_eq!(res.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn empty_result_renders() {
        let res = ExperimentResult::new("fig0", "empty");
        assert!(res.to_table().contains("no rows"));
        assert_eq!(res.to_csv(), "\n");
    }
}
