//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N] [--out DIR]
//! ```
//!
//! Results are printed as text tables and written as CSV files under the
//! output directory (default `bench-results/`).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lbs_bench::{all_experiment_ids, run_experiment, Scale};

struct Options {
    experiments: Vec<String>,
    scale: Scale,
    seed: u64,
    out_dir: PathBuf,
}

enum Command {
    Run(Options),
    Help,
}

fn parse_args() -> Result<Command, String> {
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut seed = 2015u64; // the paper's publication year, for determinism
    let mut out_dir = PathBuf::from("bench-results");

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                let value = args.next().ok_or("--experiment needs a value")?;
                if value == "all" {
                    experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
                } else {
                    experiments.push(value);
                }
            }
            "--scale" | "-s" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale `{value}`"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--out" | "-o" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Ok(Command::Help);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if experiments.is_empty() {
        experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    Ok(Command::Run(Options {
        experiments,
        scale,
        seed,
        out_dir,
    }))
}

fn usage() -> String {
    format!(
        "usage: repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N] [--out DIR]\n\
         experiments: {}",
        all_experiment_ids().join(", ")
    )
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Command::Run(o)) => o,
        Ok(Command::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = fs::create_dir_all(&options.out_dir) {
        eprintln!("cannot create {}: {e}", options.out_dir.display());
        return ExitCode::FAILURE;
    }
    let valid = all_experiment_ids();
    for id in &options.experiments {
        if !valid.contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            return ExitCode::from(2);
        }
    }
    println!(
        "Reproducing {} experiment(s) at {:?} scale (seed {})\n",
        options.experiments.len(),
        options.scale,
        options.seed
    );
    for id in &options.experiments {
        let started = std::time::Instant::now();
        let result = run_experiment(id, options.scale, options.seed);
        println!("{}", result.to_table());
        println!("  ({:.1?})\n", started.elapsed());
        let path = options.out_dir.join(format!("{id}.csv"));
        if let Err(e) = fs::write(&path, result.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("CSV files written to {}", options.out_dir.display());
    ExitCode::SUCCESS
}
