//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N]
//!       [--threads N] [--out DIR]
//!       [--scenario FILE]... [--scenario-dir DIR] [--smoke]
//! ```
//!
//! Results are printed as text tables and written as CSV files under the
//! output directory (default `bench-results/`). Every run also writes
//! `BENCH_repro.json` there: a machine-readable summary with per-experiment
//! wall time, the deepest query cost exercised and the mean relative error
//! (see `EXPERIMENTS.md` for the field-by-field description).
//!
//! `--scenario FILE` (repeatable) and `--scenario-dir DIR` switch the run
//! from the built-in experiment list to declarative scenario specs
//! (TOML/JSON, schema in `EXPERIMENTS.md`); report rows are then keyed by
//! scenario id. `--smoke` shrinks every scenario to a fast CI-sized sweep.
//!
//! `--threads N` fans the estimator samples of every experiment across `N`
//! worker threads (`0` = all cores). Results are **bit-identical for every
//! thread count** — the flag only changes wall-clock time. When more than
//! one thread is requested, the run additionally times a serial-versus-
//! parallel COUNT probe and records the measured speedup (plus a determinism
//! check) in `BENCH_repro.json`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lbs_bench::{
    all_experiment_ids,
    report::{gate_against, run_speedup_probe},
    run_experiment_threaded, BenchRecord, BenchReport, Scale, Scenario, ScenarioContext,
};

struct Options {
    experiments: Vec<String>,
    scale: Scale,
    seed: u64,
    threads: usize,
    out_dir: PathBuf,
    gate: Option<PathBuf>,
    scenarios: Vec<PathBuf>,
    scenario_dir: Option<PathBuf>,
    smoke: bool,
}

enum Command {
    Run(Options),
    Help,
}

fn parse_args() -> Result<Command, String> {
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut seed = 2015u64; // the paper's publication year, for determinism
    let mut threads = 1usize;
    let mut out_dir = PathBuf::from("bench-results");
    let mut gate: Option<PathBuf> = None;
    let mut scenarios: Vec<PathBuf> = Vec::new();
    let mut scenario_dir: Option<PathBuf> = None;
    let mut smoke = false;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                let value = args.next().ok_or("--experiment needs a value")?;
                if value == "all" {
                    experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
                } else {
                    experiments.push(value);
                }
            }
            "--scale" | "-s" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale `{value}`"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--threads" | "-t" => {
                let value = args.next().ok_or("--threads needs a value")?;
                threads = value
                    .parse()
                    .map_err(|_| format!("bad thread count `{value}`"))?;
            }
            "--out" | "-o" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--gate" | "-g" => {
                gate = Some(PathBuf::from(args.next().ok_or("--gate needs a value")?));
            }
            "--scenario" => {
                scenarios.push(PathBuf::from(
                    args.next().ok_or("--scenario needs a file path")?,
                ));
            }
            "--scenario-dir" => {
                scenario_dir = Some(PathBuf::from(
                    args.next().ok_or("--scenario-dir needs a directory")?,
                ));
            }
            "--smoke" => {
                smoke = true;
            }
            "--help" | "-h" => {
                return Ok(Command::Help);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if experiments.is_empty() {
        experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    Ok(Command::Run(Options {
        experiments,
        scale,
        seed,
        threads,
        out_dir,
        gate,
        scenarios,
        scenario_dir,
        smoke,
    }))
}

fn usage() -> String {
    format!(
        "usage: repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N]\n\
         \x20            [--threads N] [--out DIR] [--gate REFERENCE.json]\n\
         \x20            [--scenario FILE]... [--scenario-dir DIR] [--smoke]\n\
         --threads N       run estimator samples on N worker threads (0 = all cores);\n\
         \x20                 results are bit-identical for every N\n\
         --gate FILE       after the run, diff the fresh BENCH_repro.json against the\n\
         \x20                 reference JSON and exit non-zero on a bench regression\n\
         --scenario FILE   run a declarative scenario spec (TOML/JSON) instead of the\n\
         \x20                 built-in experiment list; repeatable\n\
         --scenario-dir D  run every .toml/.json scenario in a directory (sorted)\n\
         --smoke           shrink scenarios to a fast smoke sweep (micro scale /\n\
         \x20                 capped sizes and budgets)\n\
         experiments: {}",
        all_experiment_ids().join(", ")
    )
}

/// Prints a finished result, records it in the report, and writes its CSV.
/// Shared by the scenario and experiment paths so their output handling
/// cannot drift apart.
fn emit_result(
    result: &lbs_bench::ExperimentResult,
    wall_time_s: f64,
    out_dir: &std::path::Path,
    report: &mut BenchReport,
) -> Result<(), String> {
    println!("{}", result.to_table());
    if let Some(line) = result.engine_summary_line() {
        println!("  engine: {line}");
    }
    println!("  ({wall_time_s:.1}s)\n");
    report
        .experiments
        .push(BenchRecord::from_result(result, wall_time_s));
    let path = out_dir.join(format!("{}.csv", result.id));
    fs::write(&path, result.to_csv()).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Command::Run(o)) => o,
        Ok(Command::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = fs::create_dir_all(&options.out_dir) {
        eprintln!("cannot create {}: {e}", options.out_dir.display());
        return ExitCode::FAILURE;
    }
    let scenario_mode = !options.scenarios.is_empty() || options.scenario_dir.is_some();
    let mut report = BenchReport::new(options.scale, options.seed, options.threads);

    if scenario_mode {
        let mut scenarios: Vec<Scenario> = Vec::new();
        for path in &options.scenarios {
            match lbs_bench::load_scenario(path) {
                Ok(s) => scenarios.push(s),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(dir) = &options.scenario_dir {
            match lbs_bench::load_scenario_dir(dir) {
                Ok(mut from_dir) => scenarios.append(&mut from_dir),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        // Ids must be unique across --scenario files and --scenario-dir
        // combined: the id keys both the CSV file name and the report
        // record, so a duplicate would silently overwrite its twin.
        let mut seen_ids = std::collections::BTreeSet::new();
        for scenario in &scenarios {
            if !seen_ids.insert(scenario.id.as_str()) {
                eprintln!(
                    "duplicate scenario id `{}` across --scenario/--scenario-dir inputs",
                    scenario.id
                );
                return ExitCode::from(2);
            }
        }
        println!(
            "Running {} scenario(s) at {:?} scale (seed {}, {} thread(s){})\n",
            scenarios.len(),
            options.scale,
            options.seed,
            options.threads,
            if options.smoke { ", smoke" } else { "" },
        );
        let ctx = ScenarioContext {
            scale: options.scale,
            seed: options.seed,
            threads: options.threads,
            smoke: options.smoke,
        };
        for scenario in &scenarios {
            let started = std::time::Instant::now();
            let result = match lbs_bench::run_scenario(scenario, &ctx) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("scenario failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wall_time_s = started.elapsed().as_secs_f64();
            if let Err(e) = emit_result(&result, wall_time_s, &options.out_dir, &mut report) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let valid = all_experiment_ids();
        for id in &options.experiments {
            if !valid.contains(&id.as_str()) {
                eprintln!("unknown experiment `{id}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
        println!(
            "Reproducing {} experiment(s) at {:?} scale (seed {}, {} thread(s))\n",
            options.experiments.len(),
            options.scale,
            options.seed,
            options.threads,
        );
        for id in &options.experiments {
            let started = std::time::Instant::now();
            let result = run_experiment_threaded(id, options.scale, options.seed, options.threads);
            let wall_time_s = started.elapsed().as_secs_f64();
            if let Err(e) = emit_result(&result, wall_time_s, &options.out_dir, &mut report) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if options.threads != 1 {
        println!("Timing the serial-versus-parallel COUNT probe...");
        // Resolve `0 = all cores` the same way the experiments do, so the
        // probe measures the thread count the run actually used.
        let probe_threads = lbs_core::SampleDriver::new(options.threads)
            .threads()
            .max(2);
        let probe = run_speedup_probe(options.scale, options.seed, probe_threads);
        println!(
            "  serial {:.2}s, {} threads {:.2}s -> speedup {:.2}x ({} CPU(s) available, deterministic: {})\n",
            probe.serial_wall_s,
            probe.threads,
            probe.parallel_wall_s,
            probe.speedup,
            probe.available_parallelism,
            probe.deterministic,
        );
        report.speedup = Some(probe);
    }

    let json_path = options.out_dir.join("BENCH_repro.json");
    if let Err(e) = fs::write(&json_path, report.to_json()) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "CSV files and BENCH_repro.json written to {}",
        options.out_dir.display()
    );

    if let Some(reference_path) = &options.gate {
        let reference: BenchReport = match fs::read_to_string(reference_path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
        {
            Ok(reference) => reference,
            Err(e) => {
                eprintln!(
                    "cannot load gate reference {}: {e}",
                    reference_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let violations = gate_against(&report, &reference);
        if violations.is_empty() {
            println!(
                "bench gate PASSED against {} ({} experiments compared)",
                reference_path.display(),
                reference.experiments.len()
            );
        } else {
            eprintln!("bench gate FAILED against {}:", reference_path.display());
            for violation in &violations {
                eprintln!("  - {violation}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
