//! # lbs-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section (§6) on the simulated substrates of this workspace.
//!
//! Each experiment is a function in [`experiments`] returning an
//! [`ExperimentResult`]: a set of rows shaped like the series the paper
//! plots (query cost versus relative error, estimate traces, ablation
//! ladders, …). The `repro` binary runs them from the command line and
//! writes CSV files; the Criterion bench `paper_experiments` runs reduced
//! versions so that `cargo bench` exercises the same code paths.
//!
//! Absolute numbers differ from the paper — the substrate is a simulator,
//! not Google Maps or WeChat — but the *shape* of each result (which
//! algorithm wins, roughly by how much, how cost scales with k, database
//! size or precision) is the reproduction target. `EXPERIMENTS.md` at the
//! repository root maps every paper artefact to its function in
//! [`experiments`], explains how to read the transposed cost/accuracy
//! tables, and documents the `BENCH_repro.json` summary (see [`report`])
//! that every `repro` run emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod result;
pub mod scale;
pub mod scenario;
pub mod toml_lite;

pub use experiments::{all_experiment_ids, run_experiment, run_experiment_threaded};
pub use report::{
    BenchRecord, BenchReport, CacheBenchReport, HotPathBenchReport, LoadtestBenchReport,
    SessionBenchReport, SpeedupReport, StratifiedBenchReport,
};
pub use result::{ExperimentResult, Row};
pub use scale::Scale;
pub use scenario::{
    build_workload, load_scenario, load_scenario_dir, run_scenario, BackendSpec, CacheMode,
    MutationSpec, Scenario, ScenarioContext, SessionSpec, StrataSpec, Workload,
};
