//! Declarative scenario layer: workload specs loadable from TOML/JSON.
//!
//! A [`Scenario`] describes one complete estimation workload — dataset
//! (spatial model, size, planted truths), interface (LR/LNR, k,
//! restrictions), optional backend decorators (rate limiting, latency,
//! truncation), aggregate (COUNT/SUM/AVG plus selection), and estimator
//! configuration (algorithm, budget, error-reduction toggles) — so that the
//! evaluation matrix of the paper's §6 can be swept from committed spec
//! files (`repro --scenario FILE`, `repro --scenario-dir DIR`) instead of
//! hard-coded Rust.
//!
//! Two forms exist:
//!
//! * **Built-in**: `experiment = "fig14"` delegates to the corresponding
//!   [`crate::experiments`] function. The output is bit-identical to
//!   `repro --experiment fig14` at the same scale/seed/threads — the
//!   scenario file is just a declarative name for the hard-coded path.
//! * **Declarative**: `[dataset]`/`[interface]`/`[aggregate]`/`[estimator]`
//!   (plus optional `[backend]`) assemble a workload from parts, including
//!   configurations no built-in experiment covers (grid/Zipf-hotspot
//!   datasets, decorated backends, prominence ranking, …).
//!
//! Specs are deserialized strictly: unknown keys are rejected with the
//! offending name, so typos cannot silently disable a knob.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Error as SerdeError, Value};

use lbs_core::{
    Aggregate, AllocationPolicy, Estimate, EstimateError, EstimationSession, LnrLbsAggConfig,
    LnrSession, LrLbsAggConfig, LrSession, NnoConfig, NnoSession, Selection, SessionConfig,
    StratifiedSession, StratumEstimator,
};
use lbs_data::{Dataset, DensityGrid, ScenarioBuilder, Stratifier, Tuple};
use lbs_geom::Rect;
use lbs_service::{
    backend_fingerprint, AnswerCache, CacheStats, CachingBackend, IndexKind, LatencyBackend,
    LbsBackend, QueryBudget, Ranking, RateLimitedBackend, ServiceConfig, SimulatedLbs,
    TruncatingBackend,
};

use crate::experiments::{all_experiment_ids, lnr_delta, run_experiment_threaded};
use crate::result::{ExperimentResult, Row};
use crate::scale::Scale;
use crate::toml_lite;

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// A complete scenario specification (one TOML/JSON file).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario identifier: used as the CSV file name and as the key of the
    /// scenario's row in `BENCH_repro.json`.
    pub id: String,
    /// Human-readable title (defaults to the id).
    pub title: Option<String>,
    /// Pinned root seed; defaults to the CLI `--seed`.
    pub seed: Option<u64>,
    /// Pinned scale (`micro`/`tiny`/`small`/`paper`) for built-in
    /// experiments; defaults to the CLI `--scale`.
    pub scale: Option<String>,
    /// Built-in form: the experiment id (`fig11` … `table1`) to delegate to.
    pub experiment: Option<String>,
    /// Declarative form: the dataset to generate.
    pub dataset: Option<DatasetSpec>,
    /// Declarative form: the service interface.
    pub interface: Option<InterfaceSpec>,
    /// Declarative form: optional backend decorators.
    pub backend: Option<BackendSpec>,
    /// Declarative form: the aggregate to estimate.
    pub aggregate: Option<AggregateSpec>,
    /// Declarative form: the estimator and its budget.
    pub estimator: Option<EstimatorSpec>,
    /// Declarative form: the stratification of the region (required when —
    /// and only when — `estimator.strategy = "stratified"`).
    pub strata: Option<StrataSpec>,
    /// Declarative form: anytime-session knobs. When present, the scenario
    /// runs through the resumable [`EstimationSession`] path instead of the
    /// batch facade (which is itself a session with no overrides).
    pub session: Option<SessionSpec>,
    /// Declarative form: a deterministic insert/delete stream applied to the
    /// dataset between repetitions, exercising the answer cache's versioned
    /// invalidation (ground truth is recomputed per repetition).
    pub mutations: Option<MutationSpec>,
}

/// Dataset section of a declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Spatial model: `usa_pois`, `wechat_users`, `weibo_users`, `uniform`,
    /// `grid`, or `zipf_hotspot`.
    pub model: String,
    /// Number of tuples.
    pub size: usize,
    /// Planted Starbucks count (POI models only).
    pub starbucks: Option<usize>,
    /// Bounding box override `[min_x, min_y, max_x, max_y]`.
    pub bbox: Option<[f64; 4]>,
    /// Lattice columns (`grid` model).
    pub cols: Option<usize>,
    /// Lattice rows (`grid` model).
    pub rows: Option<usize>,
    /// Jitter fraction in `[0, 1]` (`grid` model; 0 stacks tuples).
    pub jitter: Option<f64>,
    /// Hotspot count (`zipf_hotspot` model).
    pub hotspots: Option<usize>,
    /// Zipf popularity exponent (`zipf_hotspot` model).
    pub exponent: Option<f64>,
}

/// Interface section of a declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct InterfaceSpec {
    /// `lr` (locations returned) or `lnr` (rank only).
    pub kind: String,
    /// Top-k limit (default 10).
    pub k: Option<usize>,
    /// Maximum coverage radius in km.
    pub max_radius: Option<f64>,
    /// WeChat-style location-obfuscation grid size in km.
    pub obfuscation_grid: Option<f64>,
    /// Hard server-side query limit.
    pub query_limit: Option<u64>,
    /// Enables prominence ranking with this distance-per-prominence weight.
    pub prominence_weight: Option<f64>,
    /// Spatial index backend of the simulator: `grid` (default), `kdtree`,
    /// or `brute`. Answer-preserving — every backend is exact — so this only
    /// trades index build/query time.
    pub index: Option<String>,
}

/// Session section of a declarative scenario: anytime-run knobs consumed by
/// the [`EstimationSession`] path (and by `lbs-server` jobs built from the
/// same spec).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionSpec {
    /// Fixed samples per wave (default: the adaptive sizing of the batch
    /// path, which keeps results byte-identical to a spec without
    /// `[session]`).
    pub wave_size: Option<u64>,
    /// Stop early once the 95 % confidence-interval half-width drops to
    /// this value.
    pub target_ci_halfwidth: Option<f64>,
    /// Stop early after this much wall-clock time (not deterministic).
    pub max_wall_ms: Option<u64>,
}

impl SessionSpec {
    /// Applies the spec's overrides to a base [`SessionConfig`].
    pub fn apply(&self, mut cfg: SessionConfig) -> SessionConfig {
        if let Some(wave) = self.wave_size {
            cfg = cfg.with_wave_size(wave);
        }
        if let Some(target) = self.target_ci_halfwidth {
            cfg = cfg.with_target_ci_halfwidth(target);
        }
        if let Some(ms) = self.max_wall_ms {
            cfg = cfg.with_max_wall_ms(ms);
        }
        cfg
    }
}

/// Backend-decorator section of a declarative scenario. Decorators are
/// applied innermost-to-outermost as: truncation, latency, rate limit, with
/// the answer cache placed by `cache_order` (outermost by default).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackendSpec {
    /// Pause after every this many queries (rate-limiter decorator).
    pub rate_limit_burst: Option<u64>,
    /// Pause duration in milliseconds (default 1 when a burst is set).
    pub rate_limit_pause_ms: Option<u64>,
    /// Fixed per-query latency in milliseconds (latency decorator).
    pub latency_ms: Option<u64>,
    /// Truncate every n-th answer ("flaky" decorator).
    pub truncate_every: Option<u64>,
    /// How many tuples a truncated answer keeps (default 1).
    pub truncate_to: Option<usize>,
    /// Answer cache: `"off"` (default), `"private"` (one cache per
    /// repetition — per-tenant on the server), or `"shared"` (one cache
    /// across repetitions — cross-tenant on the server).
    pub cache: Option<String>,
    /// Whether cache hits charge the service ledger like real queries
    /// (default `true`, which keeps cached runs bit-identical to uncached
    /// ones in estimates, traces, and the ledger).
    pub cache_hits_metered: Option<bool>,
    /// Placement of the cache relative to the rate limiter:
    /// `"cache_outside"` (hits skip the throttle) or `"cache_inside"`
    /// (every call is throttled). Required — and only allowed — when both
    /// `cache` and `rate_limit_burst` are set; the stack is ambiguous
    /// otherwise.
    pub cache_order: Option<String>,
}

/// How a workload's answers are cached, parsed from `[backend] cache`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// No answer cache.
    #[default]
    Off,
    /// One fresh cache per repetition (per-tenant cache on the server).
    Private,
    /// One cache shared across repetitions (cross-tenant on the server).
    Shared,
}

impl BackendSpec {
    /// Parses the `cache` knob (`Off` when absent).
    pub fn cache_mode(&self, id: &str) -> Result<CacheMode, String> {
        match self.cache.as_deref() {
            None | Some("off") => Ok(CacheMode::Off),
            Some("private") => Ok(CacheMode::Private),
            Some("shared") => Ok(CacheMode::Shared),
            Some(other) => Err(format!(
                "{id}: unknown backend cache `{other}` (off, private, shared)"
            )),
        }
    }

    /// Structural validation of the cache knobs: values, applicability, and
    /// the composition-order rules (see [`lbs_service::CachingBackend`]).
    fn validate(&self, id: &str) -> Result<(), String> {
        let cache_on = self.cache_mode(id)? != CacheMode::Off;
        if let Some(order) = self.cache_order.as_deref() {
            if !matches!(order, "cache_outside" | "cache_inside") {
                return Err(format!(
                    "{id}: unknown backend cache_order `{order}` (cache_outside, cache_inside)"
                ));
            }
            if !cache_on {
                return Err(format!(
                    "{id}: backend key `cache_order` does not apply without an enabled `cache`"
                ));
            }
            if self.rate_limit_burst.is_none() {
                return Err(format!(
                    "{id}: backend key `cache_order` does not apply without `rate_limit_burst`"
                ));
            }
        }
        if self.cache_hits_metered.is_some() && !cache_on {
            return Err(format!(
                "{id}: backend key `cache_hits_metered` does not apply without an enabled `cache`"
            ));
        }
        if cache_on {
            if self.truncate_every.is_some() {
                return Err(format!(
                    "{id}: ambiguous backend stack: `cache` cannot combine with \
                     `truncate_every` — caching an ordinal-truncated answer would replay \
                     the degraded page to every later query"
                ));
            }
            if self.rate_limit_burst.is_some() && self.cache_order.is_none() {
                return Err(format!(
                    "{id}: ambiguous backend stack: both `cache` and `rate_limit_burst` \
                     are set — add `cache_order = \"cache_outside\"` (hits skip the \
                     throttle) or `cache_order = \"cache_inside\"` (every call is \
                     throttled)"
                ));
            }
        }
        Ok(())
    }
}

/// Mutation section of a declarative scenario: between consecutive
/// repetitions, this many seeded-random inserts and deletes are applied to
/// the dataset. Each mutation bumps the dataset fingerprint; a shared answer
/// cache is migrated across the bump with certificate-bounded invalidation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationSpec {
    /// Tuples inserted (at seeded-uniform points in the region) between
    /// repetitions.
    pub inserts_per_rep: Option<u64>,
    /// Tuples deleted (seeded-random existing ids) between repetitions.
    pub deletes_per_rep: Option<u64>,
}

impl MutationSpec {
    fn validate(&self, id: &str) -> Result<(), String> {
        if self.inserts_per_rep.unwrap_or(0) == 0 && self.deletes_per_rep.unwrap_or(0) == 0 {
            return Err(format!(
                "{id}: [mutations] needs `inserts_per_rep` or `deletes_per_rep` > 0"
            ));
        }
        Ok(())
    }
}

/// Aggregate section of a declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateSpec {
    /// `count`, `sum`, or `avg`.
    pub kind: String,
    /// Attribute to SUM/AVG over (required for those kinds).
    pub attr: Option<String>,
    /// Text-equality selection conditions (attribute → required value),
    /// conjoined.
    pub equals: Option<std::collections::BTreeMap<String, String>>,
    /// Boolean selection conditions (attribute → required flag), conjoined.
    pub flags: Option<std::collections::BTreeMap<String, bool>>,
    /// Numeric at-least conditions (attribute → inclusive minimum).
    pub at_least: Option<std::collections::BTreeMap<String, f64>>,
    /// Spatial selection `[min_x, min_y, max_x, max_y]`.
    pub region: Option<[f64; 4]>,
}

/// Estimator section of a declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorSpec {
    /// `lr` (LR-LBS-AGG), `lnr` (LNR-LBS-AGG), or `nno` (LR-LBS-NNO).
    pub algorithm: String,
    /// Soft query budget per repetition.
    pub budget: u64,
    /// Independent repetitions (default 1); the report averages their
    /// relative errors.
    pub repetitions: Option<usize>,
    /// Fixed top-h level instead of the adaptive rule (LR only).
    pub fixed_h: Option<usize>,
    /// Figure-20 ablation level 0–4 (LR only).
    pub ablation_level: Option<usize>,
    /// Density-weighted sampling: `[cols, rows]` histogram resolution of the
    /// §5.2 external-knowledge grid (built from the dataset itself).
    pub weighted_grid: Option<[u64; 2]>,
    /// Pseudo-count smoothing of the weighted grid (default 0.1).
    pub weighted_smoothing: Option<f64>,
    /// `flat` (default) runs one session over the whole region;
    /// `stratified` splits the region per the `[strata]` section and merges
    /// per-stratum child sessions with the stratified Horvitz–Thompson
    /// combiner.
    pub strategy: Option<String>,
}

/// Stratification section of a declarative scenario (`[strata]`).
#[derive(Clone, Debug, PartialEq)]
pub struct StrataSpec {
    /// Partitioner: `grid` (near-square uniform tiling) or `density`
    /// (equal-mass vertical slabs cut from a density grid built over the
    /// dataset).
    pub partition: String,
    /// Number of strata (`1` is the bitwise-passthrough degenerate case).
    pub count: u64,
    /// Budget allocation across strata: `proportional` (default) or
    /// `neyman` (pilot half, then budget ∝ stratum weight × observed
    /// standard deviation).
    pub allocation: Option<String>,
}

impl StrataSpec {
    fn validate(&self, id: &str) -> Result<(), String> {
        if !matches!(self.partition.as_str(), "grid" | "density") {
            return Err(format!(
                "{id}: unknown strata partition `{}` (grid, density)",
                self.partition
            ));
        }
        if self.count == 0 {
            return Err(format!("{id}: strata count must be at least 1"));
        }
        if let Some(allocation) = &self.allocation {
            if !matches!(allocation.as_str(), "proportional" | "neyman") {
                return Err(format!(
                    "{id}: unknown strata allocation `{allocation}` (proportional, neyman)"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Strict deserialization helpers (the vendored serde has no derive attrs)
// ---------------------------------------------------------------------------

fn as_map<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], SerdeError> {
    match value {
        Value::Map(entries) => Ok(entries),
        // lbs-lint: allow(nondet-debug-fmt, reason = "vendored Value's Debug is deterministic; its map keeps insertion order")
        other => Err(SerdeError::custom(format!(
            "{ty}: expected a table, got {other:?}"
        ))),
    }
}

fn reject_unknown(
    entries: &[(String, Value)],
    ty: &str,
    allowed: &[&str],
) -> Result<(), SerdeError> {
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(SerdeError::custom(format!(
                "{ty}: unknown key `{key}` (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn opt<T: Deserialize>(
    entries: &[(String, Value)],
    ty: &str,
    key: &str,
) -> Result<Option<T>, SerdeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| SerdeError::custom(format!("{ty}.{key}: {e}"))),
        None => Ok(None),
    }
}

fn req<T: Deserialize>(entries: &[(String, Value)], ty: &str, key: &str) -> Result<T, SerdeError> {
    opt(entries, ty, key)?
        .ok_or_else(|| SerdeError::custom(format!("{ty}: missing required key `{key}`")))
}

impl Deserialize for Scenario {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "scenario")?;
        reject_unknown(
            m,
            "scenario",
            &[
                "id",
                "title",
                "seed",
                "scale",
                "experiment",
                "dataset",
                "interface",
                "backend",
                "aggregate",
                "estimator",
                "strata",
                "session",
                "mutations",
            ],
        )?;
        Ok(Scenario {
            id: req(m, "scenario", "id")?,
            title: opt(m, "scenario", "title")?,
            seed: opt(m, "scenario", "seed")?,
            scale: opt(m, "scenario", "scale")?,
            experiment: opt(m, "scenario", "experiment")?,
            dataset: opt(m, "scenario", "dataset")?,
            interface: opt(m, "scenario", "interface")?,
            backend: opt(m, "scenario", "backend")?,
            aggregate: opt(m, "scenario", "aggregate")?,
            estimator: opt(m, "scenario", "estimator")?,
            strata: opt(m, "scenario", "strata")?,
            session: opt(m, "scenario", "session")?,
            mutations: opt(m, "scenario", "mutations")?,
        })
    }
}

impl Deserialize for StrataSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "strata")?;
        reject_unknown(m, "strata", &["partition", "count", "allocation"])?;
        Ok(StrataSpec {
            partition: req(m, "strata", "partition")?,
            count: req(m, "strata", "count")?,
            allocation: opt(m, "strata", "allocation")?,
        })
    }
}

impl Deserialize for SessionSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "session")?;
        reject_unknown(
            m,
            "session",
            &["wave_size", "target_ci_halfwidth", "max_wall_ms"],
        )?;
        Ok(SessionSpec {
            wave_size: opt(m, "session", "wave_size")?,
            target_ci_halfwidth: opt(m, "session", "target_ci_halfwidth")?,
            max_wall_ms: opt(m, "session", "max_wall_ms")?,
        })
    }
}

impl Deserialize for DatasetSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "dataset")?;
        reject_unknown(
            m,
            "dataset",
            &[
                "model",
                "size",
                "starbucks",
                "bbox",
                "cols",
                "rows",
                "jitter",
                "hotspots",
                "exponent",
            ],
        )?;
        Ok(DatasetSpec {
            model: req(m, "dataset", "model")?,
            size: req(m, "dataset", "size")?,
            starbucks: opt(m, "dataset", "starbucks")?,
            bbox: opt(m, "dataset", "bbox")?,
            cols: opt(m, "dataset", "cols")?,
            rows: opt(m, "dataset", "rows")?,
            jitter: opt(m, "dataset", "jitter")?,
            hotspots: opt(m, "dataset", "hotspots")?,
            exponent: opt(m, "dataset", "exponent")?,
        })
    }
}

impl Deserialize for InterfaceSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "interface")?;
        reject_unknown(
            m,
            "interface",
            &[
                "kind",
                "k",
                "max_radius",
                "obfuscation_grid",
                "query_limit",
                "prominence_weight",
                "index",
            ],
        )?;
        Ok(InterfaceSpec {
            kind: req(m, "interface", "kind")?,
            k: opt(m, "interface", "k")?,
            max_radius: opt(m, "interface", "max_radius")?,
            obfuscation_grid: opt(m, "interface", "obfuscation_grid")?,
            query_limit: opt(m, "interface", "query_limit")?,
            prominence_weight: opt(m, "interface", "prominence_weight")?,
            index: opt(m, "interface", "index")?,
        })
    }
}

impl Deserialize for BackendSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "backend")?;
        reject_unknown(
            m,
            "backend",
            &[
                "rate_limit_burst",
                "rate_limit_pause_ms",
                "latency_ms",
                "truncate_every",
                "truncate_to",
                "cache",
                "cache_hits_metered",
                "cache_order",
            ],
        )?;
        Ok(BackendSpec {
            rate_limit_burst: opt(m, "backend", "rate_limit_burst")?,
            rate_limit_pause_ms: opt(m, "backend", "rate_limit_pause_ms")?,
            latency_ms: opt(m, "backend", "latency_ms")?,
            truncate_every: opt(m, "backend", "truncate_every")?,
            truncate_to: opt(m, "backend", "truncate_to")?,
            cache: opt(m, "backend", "cache")?,
            cache_hits_metered: opt(m, "backend", "cache_hits_metered")?,
            cache_order: opt(m, "backend", "cache_order")?,
        })
    }
}

impl Deserialize for MutationSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "mutations")?;
        reject_unknown(m, "mutations", &["inserts_per_rep", "deletes_per_rep"])?;
        Ok(MutationSpec {
            inserts_per_rep: opt(m, "mutations", "inserts_per_rep")?,
            deletes_per_rep: opt(m, "mutations", "deletes_per_rep")?,
        })
    }
}

impl Deserialize for AggregateSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "aggregate")?;
        reject_unknown(
            m,
            "aggregate",
            &["kind", "attr", "equals", "flags", "at_least", "region"],
        )?;
        Ok(AggregateSpec {
            kind: req(m, "aggregate", "kind")?,
            attr: opt(m, "aggregate", "attr")?,
            equals: opt(m, "aggregate", "equals")?,
            flags: opt(m, "aggregate", "flags")?,
            at_least: opt(m, "aggregate", "at_least")?,
            region: opt(m, "aggregate", "region")?,
        })
    }
}

impl Deserialize for EstimatorSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let m = as_map(value, "estimator")?;
        reject_unknown(
            m,
            "estimator",
            &[
                "algorithm",
                "budget",
                "repetitions",
                "fixed_h",
                "ablation_level",
                "weighted_grid",
                "weighted_smoothing",
                "strategy",
            ],
        )?;
        Ok(EstimatorSpec {
            algorithm: req(m, "estimator", "algorithm")?,
            budget: req(m, "estimator", "budget")?,
            repetitions: opt(m, "estimator", "repetitions")?,
            fixed_h: opt(m, "estimator", "fixed_h")?,
            ablation_level: opt(m, "estimator", "ablation_level")?,
            weighted_grid: opt(m, "estimator", "weighted_grid")?,
            weighted_smoothing: opt(m, "estimator", "weighted_smoothing")?,
            strategy: opt(m, "estimator", "strategy")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

impl Scenario {
    /// Structural validation beyond per-field typing.
    pub fn validate(&self) -> Result<(), String> {
        if self.id.is_empty()
            || !self
                .id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!(
                "scenario id `{}` must be non-empty and use only [A-Za-z0-9_-] \
                 (it becomes a file name)",
                self.id
            ));
        }
        if let Some(scale) = &self.scale {
            if Scale::parse(scale).is_none() {
                return Err(format!("{}: unknown scale `{scale}`", self.id));
            }
        }
        if let Some(backend) = &self.backend {
            backend.validate(&self.id)?;
        }
        if let Some(mutations) = &self.mutations {
            mutations.validate(&self.id)?;
        }
        if let Some(strata) = &self.strata {
            strata.validate(&self.id)?;
        }
        let stratified = match self.estimator.as_ref().and_then(|e| e.strategy.as_deref()) {
            None | Some("flat") => false,
            Some("stratified") => true,
            Some(other) => {
                return Err(format!(
                    "{}: unknown estimator strategy `{other}` (flat, stratified)",
                    self.id
                ))
            }
        };
        match (stratified, self.strata.is_some()) {
            (true, false) => {
                return Err(format!(
                    "{}: `estimator.strategy = \"stratified\"` needs a [strata] section",
                    self.id
                ))
            }
            (false, true) => {
                return Err(format!(
                    "{}: a [strata] section needs `estimator.strategy = \"stratified\"`",
                    self.id
                ))
            }
            _ => {}
        }
        let declarative_sections = self.dataset.is_some()
            || self.interface.is_some()
            || self.aggregate.is_some()
            || self.estimator.is_some()
            || self.strata.is_some()
            || self.backend.is_some()
            || self.session.is_some()
            || self.mutations.is_some();
        match (&self.experiment, declarative_sections) {
            (Some(exp), false) => {
                if !all_experiment_ids().contains(&exp.as_str()) {
                    return Err(format!(
                        "{}: unknown experiment `{exp}` (valid: {})",
                        self.id,
                        all_experiment_ids().join(", ")
                    ));
                }
                Ok(())
            }
            (Some(_), true) => Err(format!(
                "{}: `experiment` and declarative sections are mutually exclusive",
                self.id
            )),
            (None, _) => {
                for (section, present) in [
                    ("dataset", self.dataset.is_some()),
                    ("interface", self.interface.is_some()),
                    ("aggregate", self.aggregate.is_some()),
                    ("estimator", self.estimator.is_some()),
                ] {
                    if !present {
                        return Err(format!(
                            "{}: declarative scenario is missing its [{section}] section",
                            self.id
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Loads one scenario file (`.toml` via the bundled TOML-subset parser,
/// `.json` via `serde_json`).
pub fn load_scenario(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let is_json = path
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("json"));
    let value: Value = if is_json {
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?
    } else {
        toml_lite::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
    };
    let scenario = Scenario::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))?;
    scenario
        .validate()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(scenario)
}

/// Loads every `.toml`/`.json` scenario in a directory, sorted by file name,
/// rejecting duplicate scenario ids.
pub fn load_scenario_dir(dir: &Path) -> Result<Vec<Scenario>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e.eq_ignore_ascii_case("toml") || e.eq_ignore_ascii_case("json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "no .toml/.json scenario files found in {}",
            dir.display()
        ));
    }
    let mut scenarios = Vec::with_capacity(paths.len());
    let mut seen = std::collections::BTreeSet::new();
    for path in paths {
        let scenario = load_scenario(&path)?;
        if !seen.insert(scenario.id.clone()) {
            return Err(format!(
                "duplicate scenario id `{}` in {}",
                scenario.id,
                dir.display()
            ));
        }
        scenarios.push(scenario);
    }
    Ok(scenarios)
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

/// CLI-level defaults a scenario runs under.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioContext {
    /// Scale used when the scenario does not pin one (built-in form only).
    pub scale: Scale,
    /// Root seed used when the scenario does not pin one.
    pub seed: u64,
    /// Worker threads of the sample driver.
    pub threads: usize,
    /// Smoke mode: built-in scenarios drop to `Scale::Micro`, declarative
    /// ones cap dataset size, budget and repetitions — a fast CI sweep over
    /// every committed spec.
    pub smoke: bool,
}

/// Caps applied by `--smoke` to declarative scenarios.
const SMOKE_MAX_SIZE: usize = 200;
const SMOKE_MAX_BUDGET: u64 = 250;

/// Runs one scenario to an [`ExperimentResult`] keyed by the scenario id.
pub fn run_scenario(
    scenario: &Scenario,
    ctx: &ScenarioContext,
) -> Result<ExperimentResult, String> {
    scenario.validate()?;
    match &scenario.experiment {
        Some(experiment) => run_builtin(scenario, experiment, ctx),
        None => run_declarative(scenario, ctx),
    }
}

fn run_builtin(
    scenario: &Scenario,
    experiment: &str,
    ctx: &ScenarioContext,
) -> Result<ExperimentResult, String> {
    let mut scale = scenario
        .scale
        .as_deref()
        .and_then(Scale::parse)
        .unwrap_or(ctx.scale);
    if ctx.smoke {
        scale = Scale::Micro;
    }
    let seed = scenario.seed.unwrap_or(ctx.seed);
    let mut result = run_experiment_threaded(experiment, scale, seed, ctx.threads);
    // Key the output by the *scenario* id; rows and columns stay exactly the
    // hard-coded experiment's, so the CSV is bit-identical to the
    // `--experiment` path at equal scale/seed.
    result.id = scenario.id.clone();
    if let Some(title) = &scenario.title {
        result.title = title.clone();
    }
    Ok(result)
}

/// A fully-built declarative workload: the dataset, service configuration,
/// aggregate and estimator spec of one scenario, ready to be run — either
/// batch-style by [`run_scenario`] or as an anytime job by the `lbs-server`
/// scheduler.
pub struct Workload {
    /// Scenario id.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The generated (hidden) dataset, shared so repeated services over it
    /// need no deep copies.
    pub dataset: Arc<Dataset>,
    /// Region of interest (the dataset bounding box).
    pub region: Rect,
    /// Service interface configuration.
    pub service_config: ServiceConfig,
    /// The aggregate to estimate.
    pub aggregate: Aggregate,
    /// Ground truth of the aggregate (known because we generated the data —
    /// used for reporting, never by the estimators).
    pub truth: f64,
    /// Estimator section of the spec.
    pub estimator: EstimatorSpec,
    /// Stratification section (present iff the estimator strategy is
    /// `stratified`).
    pub strata: Option<StrataSpec>,
    /// Interface kind (`lr` / `lnr`) for estimator-compatibility checks.
    pub interface_kind: String,
    /// Optional backend decorators.
    pub backend_spec: Option<BackendSpec>,
    /// Optional anytime-session knobs.
    pub session_spec: Option<SessionSpec>,
    /// Optional between-repetition mutation stream.
    pub mutations: Option<MutationSpec>,
    /// Root seed (repetition seeds derive from it via
    /// [`Workload::rep_seed`]).
    pub seed: u64,
    /// Per-repetition soft query budget (after smoke caps).
    pub budget: u64,
    /// Repetitions to run (after smoke caps).
    pub repetitions: usize,
    /// Whether smoke caps were applied.
    pub smoke: bool,
}

/// Builds the [`Workload`] of a declarative scenario (errors on built-in
/// `experiment = "figNN"` specs — those have no single-job form).
pub fn build_workload(scenario: &Scenario, ctx: &ScenarioContext) -> Result<Workload, String> {
    scenario.validate()?;
    if scenario.experiment.is_some() {
        return Err(format!(
            "{}: built-in experiment scenarios cannot be built as single workloads",
            scenario.id
        ));
    }
    let id = &scenario.id;
    let dataset_spec = scenario.dataset.as_ref().expect("validated");
    let interface = scenario.interface.as_ref().expect("validated");
    let aggregate_spec = scenario.aggregate.as_ref().expect("validated");
    let estimator = scenario.estimator.as_ref().expect("validated");

    let mut size = dataset_spec.size;
    let mut budget = estimator.budget;
    let mut repetitions = estimator.repetitions.unwrap_or(1).max(1);
    if ctx.smoke {
        size = size.min(SMOKE_MAX_SIZE);
        budget = budget.min(SMOKE_MAX_BUDGET);
        repetitions = 1;
    }
    let seed = scenario.seed.unwrap_or(ctx.seed);

    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = build_dataset(id, dataset_spec, size, &mut rng)?;
    let region = dataset.bbox();
    let service_config = build_service_config(id, interface)?;
    let aggregate = build_aggregate(id, aggregate_spec)?;
    let truth = aggregate.ground_truth(&dataset, &region);
    Ok(Workload {
        id: id.clone(),
        title: scenario.title.clone().unwrap_or_else(|| id.clone()),
        dataset: Arc::new(dataset),
        region,
        service_config,
        aggregate,
        truth,
        estimator: estimator.clone(),
        strata: scenario.strata.clone(),
        interface_kind: interface.kind.clone(),
        backend_spec: scenario.backend.clone(),
        session_spec: scenario.session.clone(),
        mutations: scenario.mutations.clone(),
        seed,
        budget,
        repetitions,
        smoke: ctx.smoke,
    })
}

impl Workload {
    /// Seed of one repetition (repetition 0 is what a single-shot server job
    /// runs).
    pub fn rep_seed(&self, rep: usize) -> u64 {
        self.seed ^ (1_000 + rep as u64)
    }

    /// The scenario's [`CacheMode`] (validated at load time; `Off` without a
    /// `[backend]` section).
    pub fn cache_mode(&self) -> CacheMode {
        self.backend_spec
            .as_ref()
            .and_then(|s| s.cache_mode(&self.id).ok())
            .unwrap_or(CacheMode::Off)
    }

    /// Whether cache hits charge the service ledger (default `true`).
    pub fn cache_hits_metered(&self) -> bool {
        self.backend_spec
            .as_ref()
            .and_then(|s| s.cache_hits_metered)
            .unwrap_or(true)
    }

    /// A fresh per-repetition [`QueryBudget`] honouring the scenario's
    /// `query_limit`.
    pub fn fresh_budget(&self) -> Arc<QueryBudget> {
        match self.service_config.query_limit {
            Some(limit) => QueryBudget::with_limit(limit),
            None => QueryBudget::unlimited(),
        }
    }

    /// Builds a fresh service plus decorator stack. One per repetition: the
    /// budget is per-repetition, so a hard `query_limit` must meter each
    /// repetition separately, and decorator ordinals reset too.
    pub fn backend(&self) -> Box<dyn LbsBackend> {
        self.backend_with_budget(self.fresh_budget())
    }

    /// Builds a fresh service charging an externally-owned [`QueryBudget`] —
    /// how the `lbs-server` scheduler points every job of a tenant at that
    /// tenant's shared quota. A hard limit on the passed budget supersedes
    /// the scenario's own `query_limit`. When the scenario enables a cache,
    /// a fresh (run-private) [`AnswerCache`] is attached; callers holding a
    /// longer-lived cache use [`Workload::backend_with_budget_and_cache`].
    pub fn backend_with_budget(&self, budget: Arc<QueryBudget>) -> Box<dyn LbsBackend> {
        let cache = match self.cache_mode() {
            CacheMode::Off => None,
            CacheMode::Private | CacheMode::Shared => Some(AnswerCache::unbounded()),
        };
        self.backend_with_budget_and_cache(budget, cache)
    }

    /// Builds a fresh service charging `budget`, with answers cached in the
    /// explicitly-passed `cache` (`None` disables caching regardless of the
    /// spec) — how a shared cache outlives any single repetition or tenant
    /// job.
    pub fn backend_with_budget_and_cache(
        &self,
        budget: Arc<QueryBudget>,
        cache: Option<Arc<AnswerCache>>,
    ) -> Box<dyn LbsBackend> {
        self.backend_over_dataset(self.dataset.clone(), budget, cache)
    }

    /// Fully-general backend constructor: an explicit dataset (the mutating
    /// declarative runner evolves it between repetitions), budget, and
    /// optional cache. The cache's placement follows the spec's
    /// `cache_order`: outermost by default (hits skip every decorator),
    /// innermost-but-one with `"cache_inside"` (every call pays the
    /// decorators' cost).
    pub fn backend_over_dataset(
        &self,
        dataset: Arc<Dataset>,
        budget: Arc<QueryBudget>,
        cache: Option<Arc<AnswerCache>>,
    ) -> Box<dyn LbsBackend> {
        let service = SimulatedLbs::with_budget(dataset, self.service_config.clone(), budget);
        let spec = self.backend_spec.as_ref();
        let Some(cache) = cache else {
            return decorate_boxed(Box::new(service), spec);
        };
        let ledger = service.budget().share();
        let version = backend_fingerprint(service.dataset(), &self.service_config);
        let metered = self.cache_hits_metered();
        if spec.and_then(|s| s.cache_order.as_deref()) == Some("cache_inside") {
            let cached: Box<dyn LbsBackend> = Box::new(CachingBackend::new(
                service, cache, ledger, metered, version,
            ));
            decorate_boxed(cached, spec)
        } else {
            let decorated = decorate_boxed(Box::new(service), spec);
            Box::new(CachingBackend::new(
                decorated, cache, ledger, metered, version,
            ))
        }
    }

    /// The wave-mode [`SessionConfig`] of one repetition: batch-equivalent
    /// defaults with the spec's `[session]` overrides applied.
    pub fn session_config(&self, threads: usize, rep: usize) -> SessionConfig {
        let cfg = SessionConfig::new(self.budget, self.rep_seed(rep)).with_threads(threads);
        match &self.session_spec {
            Some(spec) => spec.apply(cfg),
            None => cfg,
        }
    }

    /// Builds the disjoint strata of the workload's `[strata]` section:
    /// a near-square uniform tiling (`grid`) or equal-mass vertical slabs
    /// cut from a density grid over the dataset (`density`). Deterministic —
    /// the density grid is a pure function of the dataset.
    fn build_strata(&self, spec: &StrataSpec) -> Result<Vec<lbs_data::Stratum>, String> {
        let count = usize::try_from(spec.count)
            .map_err(|_| format!("{}: strata count {} is out of range", self.id, spec.count))?;
        let stratifier = match spec.partition.as_str() {
            "grid" => Stratifier::grid(count),
            "density" => {
                // Enough columns that each slab spans several cells; one row
                // because the slabs are vertical cuts.
                let cols = count.saturating_mul(4).max(32);
                let grid = DensityGrid::from_dataset(&self.dataset, cols, 1, 0.1);
                Stratifier::density(grid, count)
            }
            other => {
                return Err(format!(
                    "{}: unknown strata partition `{other}` (grid, density)",
                    self.id
                ))
            }
        };
        Ok(stratifier.strata(&self.region))
    }

    /// Starts an anytime [`EstimationSession`] over `backend` with the given
    /// run-control config, choosing and configuring the estimator from the
    /// spec. With a default [`SessionConfig`] the finished session's
    /// estimate is byte-identical to the batch path.
    pub fn start_session<S: LbsBackend>(
        &self,
        backend: S,
        cfg: SessionConfig,
    ) -> Result<EstimationSession<S>, String> {
        let kind = estimator_configs(
            &self.id,
            &self.estimator,
            &self.interface_kind,
            &self.dataset,
            &self.region,
        )?;
        if let Some(spec) = &self.strata {
            let strata = self.build_strata(spec)?;
            let allocation = match spec.allocation.as_deref() {
                Some("neyman") => AllocationPolicy::Neyman,
                _ => AllocationPolicy::Proportional,
            };
            let estimator = match kind {
                EstimatorKind::Lr(config) => StratumEstimator::Lr(config),
                EstimatorKind::Lnr(config) => StratumEstimator::Lnr(config),
                EstimatorKind::Nno(config) => StratumEstimator::Nno(config),
            };
            return Ok(EstimationSession::Stratified(Box::new(
                StratifiedSession::new(
                    backend,
                    &self.region,
                    &self.aggregate,
                    estimator,
                    strata,
                    allocation,
                    cfg,
                ),
            )));
        }
        match kind {
            EstimatorKind::Lr(config) => Ok(EstimationSession::Lr(Box::new(LrSession::new(
                backend,
                &self.region,
                &self.aggregate,
                config,
                lbs_core::lr::History::new(),
                cfg,
            )))),
            EstimatorKind::Lnr(config) => Ok(EstimationSession::Lnr(LnrSession::new(
                backend,
                &self.region,
                &self.aggregate,
                config,
                cfg,
            ))),
            EstimatorKind::Nno(config) => Ok(EstimationSession::Nno(NnoSession::new(
                backend,
                &self.region,
                &self.aggregate,
                config,
                cfg,
            ))),
        }
    }
}

fn run_declarative(scenario: &Scenario, ctx: &ScenarioContext) -> Result<ExperimentResult, String> {
    let workload = build_workload(scenario, ctx)?;

    let mut result = ExperimentResult::new(&workload.id, &workload.title);
    result.note(format!(
        "dataset {} ({} tuples), interface {} k={}, aggregate {} (truth {:.2}), \
         estimator {} budget {}",
        scenario.dataset.as_ref().expect("validated").model,
        workload.dataset.len(),
        workload.interface_kind,
        workload.service_config.k,
        scenario.aggregate.as_ref().expect("validated").kind,
        workload.truth,
        workload.estimator.algorithm,
        workload.budget,
    ));
    if let Some(backend_spec) = &workload.backend_spec {
        result.note(describe_backend(backend_spec));
    }
    if let Some(session_spec) = &workload.session_spec {
        result.note(describe_session(session_spec));
    }
    if let Some(mutations) = &workload.mutations {
        result.note(format!(
            "mutations between repetitions: {} inserts, {} deletes",
            mutations.inserts_per_rep.unwrap_or(0),
            mutations.deletes_per_rep.unwrap_or(0)
        ));
    }
    if workload.smoke {
        result.note("smoke mode: dataset size, budget and repetitions capped".to_string());
    }

    // One path for every repetition: the anytime session. With no
    // `[session]` overrides it is the batch facade bit for bit (the batch
    // facades are themselves thin loops over sessions), so there is no
    // separate estimate_parallel branch to keep in sync.
    let mode = workload.cache_mode();
    let shared_cache = match mode {
        CacheMode::Shared => Some(AnswerCache::unbounded()),
        _ => None,
    };
    let mut private_stats = CacheStats::default();
    let mut current = workload.dataset.clone();
    let mut truth = workload.truth;
    // The mutation stream draws from its own seeded RNG so that adding a
    // `[mutations]` section never perturbs dataset generation.
    let mut mutation_rng = StdRng::seed_from_u64(workload.seed ^ MUTATION_SEED_SALT);
    for rep in 0..workload.repetitions {
        let rep_cache = match mode {
            CacheMode::Off => None,
            CacheMode::Private => Some(AnswerCache::unbounded()),
            CacheMode::Shared => shared_cache.as_ref().map(|c| c.share()),
        };
        let backend = workload.backend_over_dataset(
            current.clone(),
            workload.fresh_budget(),
            rep_cache.clone(),
        );
        let cfg = workload.session_config(ctx.threads, rep);
        let mut session = workload.start_session(backend, cfg)?;
        while !session.is_finished() {
            session.step();
        }
        let snapshot = session.snapshot();
        let estimate = friendly_estimate(&workload, session.finalize())?;
        result.add_engine(&estimate.engine);
        let mut row = Row::new()
            .with("rep", rep)
            .with_f64("estimate", estimate.value)
            .with_f64("ground truth", truth)
            .with("rel err", format!("{:.4}", estimate.relative_error(truth)))
            .with("query cost", estimate.query_cost)
            .with("samples", estimate.samples);
        if workload.session_spec.is_some() {
            // Anytime runs additionally report their wave count and stop
            // reason.
            row = row.with("waves", snapshot.waves).with(
                "stop",
                snapshot
                    .stop
                    // lbs-lint: allow(nondet-debug-fmt, reason = "StopReason is a fieldless enum; Debug prints a fixed variant name")
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        result.push(row);
        if let (CacheMode::Private, Some(cache)) = (mode, &rep_cache) {
            private_stats.absorb(cache.stats());
        }
        if rep + 1 < workload.repetitions {
            if let Some(spec) = &workload.mutations {
                let mut next = (*current).clone();
                apply_mutations(
                    &mut next,
                    &workload,
                    spec,
                    shared_cache.as_ref(),
                    &mut mutation_rng,
                );
                current = Arc::new(next);
                truth = workload.aggregate.ground_truth(&current, &workload.region);
            }
        }
    }
    let cache_totals = match (mode, &shared_cache) {
        (CacheMode::Shared, Some(cache)) => Some(cache.stats()),
        (CacheMode::Private, _) => Some(private_stats),
        _ => None,
    };
    if let Some(stats) = cache_totals {
        result.note(format!(
            "answer cache: {} hits, {} misses, {} invalidations, {} evictions",
            stats.hits, stats.misses, stats.invalidations, stats.evictions
        ));
    }
    Ok(result)
}

/// Salt of the mutation RNG stream (disjoint from the dataset-generation and
/// repetition seeds).
const MUTATION_SEED_SALT: u64 = 0x6d75_7461_7465;

/// Applies one repetition boundary's worth of inserts and deletes to
/// `dataset`, migrating `cache` (the shared answer cache, when one exists)
/// across every dataset-version bump with the certificate-bounded
/// invalidation of [`AnswerCache`].
fn apply_mutations(
    dataset: &mut Dataset,
    workload: &Workload,
    spec: &MutationSpec,
    cache: Option<&Arc<AnswerCache>>,
    rng: &mut StdRng,
) {
    let config = &workload.service_config;
    for _ in 0..spec.inserts_per_rep.unwrap_or(0) {
        let location = workload.region.at_fraction(rng.gen(), rng.gen());
        let old_version = backend_fingerprint(dataset, config);
        dataset.insert(Tuple::new(dataset.next_id(), location));
        let new_version = backend_fingerprint(dataset, config);
        if let Some(cache) = cache {
            cache.apply_insert(old_version, new_version, &location);
        }
    }
    for _ in 0..spec.deletes_per_rep.unwrap_or(0) {
        if dataset.is_empty() {
            break;
        }
        let pick = ((rng.gen::<f64>() * dataset.len() as f64) as usize).min(dataset.len() - 1);
        let id = dataset.tuples()[pick].id;
        let old_version = backend_fingerprint(dataset, config);
        dataset.remove(id);
        let new_version = backend_fingerprint(dataset, config);
        if let Some(cache) = cache {
            cache.apply_delete(old_version, new_version, id);
        }
    }
}

/// Maps estimator errors onto actionable scenario-level messages.
fn friendly_estimate(
    workload: &Workload,
    outcome: Result<Estimate, EstimateError>,
) -> Result<Estimate, String> {
    match outcome {
        Ok(estimate) => Ok(estimate),
        Err(EstimateError::NoSamples) => Err(format!(
            "{}: the query budget ({}) was exhausted before any sample completed",
            workload.id, workload.budget
        )),
        Err(EstimateError::Service(msg)) => Err(format!("{}: service error: {msg}", workload.id)),
    }
}

fn describe_backend(spec: &BackendSpec) -> String {
    let mut parts = Vec::new();
    if let Some(every) = spec.truncate_every {
        parts.push(format!(
            "truncate every {every} answers to {}",
            spec.truncate_to.unwrap_or(1)
        ));
    }
    if let Some(ms) = spec.latency_ms {
        parts.push(format!("{ms} ms latency"));
    }
    if let Some(burst) = spec.rate_limit_burst {
        parts.push(format!(
            "rate limit: pause {} ms after every {burst} queries",
            spec.rate_limit_pause_ms.unwrap_or(1)
        ));
    }
    if let Some(cache) = spec.cache.as_deref() {
        if cache != "off" {
            let metered = if spec.cache_hits_metered.unwrap_or(true) {
                "metered"
            } else {
                "unmetered"
            };
            let order = match spec.cache_order.as_deref() {
                Some("cache_inside") => ", inside the rate limit",
                Some("cache_outside") => ", outside the rate limit",
                _ => "",
            };
            parts.push(format!("{cache} answer cache ({metered} hits{order})"));
        }
    }
    if parts.is_empty() {
        "backend: undecorated".to_string()
    } else {
        format!("backend decorators: {}", parts.join("; "))
    }
}

fn build_dataset(
    id: &str,
    spec: &DatasetSpec,
    size: usize,
    rng: &mut StdRng,
) -> Result<Dataset, String> {
    // Strictness extends past unknown keys: a key that exists but does not
    // apply to the chosen model (say, `jitter` on `usa_pois` after editing
    // the model line) would otherwise be ignored and run a different
    // workload than the spec reads.
    let inapplicable: &[(&str, bool)] = match spec.model.as_str() {
        "usa_pois" | "uniform" => &[
            ("cols", spec.cols.is_some()),
            ("rows", spec.rows.is_some()),
            ("jitter", spec.jitter.is_some()),
            ("hotspots", spec.hotspots.is_some()),
            ("exponent", spec.exponent.is_some()),
        ],
        "wechat_users" | "weibo_users" => &[
            ("starbucks", spec.starbucks.is_some()),
            ("cols", spec.cols.is_some()),
            ("rows", spec.rows.is_some()),
            ("jitter", spec.jitter.is_some()),
            ("hotspots", spec.hotspots.is_some()),
            ("exponent", spec.exponent.is_some()),
        ],
        "grid" => &[
            ("hotspots", spec.hotspots.is_some()),
            ("exponent", spec.exponent.is_some()),
        ],
        "zipf_hotspot" => &[
            ("cols", spec.cols.is_some()),
            ("rows", spec.rows.is_some()),
            ("jitter", spec.jitter.is_some()),
        ],
        _ => &[],
    };
    for (key, present) in inapplicable {
        if *present {
            return Err(format!(
                "{id}: dataset key `{key}` does not apply to model `{}`",
                spec.model
            ));
        }
    }
    let mut builder = match spec.model.as_str() {
        "usa_pois" => ScenarioBuilder::usa_pois(size),
        "wechat_users" => ScenarioBuilder::wechat_users(size),
        "weibo_users" => ScenarioBuilder::weibo_users(size),
        "uniform" => {
            let bbox = spec
                .bbox
                .map(|b| rect_from(id, b))
                .transpose()?
                .unwrap_or_else(lbs_data::region::usa);
            ScenarioBuilder::uniform_points(size, bbox)
        }
        "grid" => ScenarioBuilder::grid_pois(
            size,
            spec.cols.unwrap_or(8),
            spec.rows.unwrap_or(8),
            spec.jitter.unwrap_or(0.0),
        ),
        "zipf_hotspot" => ScenarioBuilder::zipf_hotspot_pois(
            size,
            spec.hotspots.unwrap_or(12),
            spec.exponent.unwrap_or(1.2),
        ),
        other => {
            return Err(format!(
                "{id}: unknown dataset model `{other}` (usa_pois, wechat_users, weibo_users, \
                 uniform, grid, zipf_hotspot)"
            ))
        }
    };
    if spec.model != "uniform" {
        if let Some(bbox) = spec.bbox {
            builder = builder.with_bbox(rect_from(id, bbox)?);
        }
    }
    if let Some(starbucks) = spec.starbucks {
        builder = builder.with_starbucks(starbucks);
    }
    Ok(builder.build(rng))
}

fn rect_from(id: &str, b: [f64; 4]) -> Result<Rect, String> {
    if !(b[0] <= b[2] && b[1] <= b[3]) {
        return Err(format!(
            "{id}: invalid bbox [{}, {}, {}, {}] (min must not exceed max)",
            b[0], b[1], b[2], b[3]
        ));
    }
    Ok(Rect::from_bounds(b[0], b[1], b[2], b[3]))
}

fn build_service_config(id: &str, spec: &InterfaceSpec) -> Result<ServiceConfig, String> {
    let k = spec.k.unwrap_or(10);
    let mut config = match spec.kind.as_str() {
        "lr" => ServiceConfig::lr_lbs(k),
        "lnr" => ServiceConfig::lnr_lbs(k),
        other => return Err(format!("{id}: unknown interface kind `{other}` (lr, lnr)")),
    };
    if let Some(radius) = spec.max_radius {
        config = config.with_max_radius(radius);
    }
    if let Some(grid) = spec.obfuscation_grid {
        config = config.with_obfuscation(grid);
    }
    if let Some(limit) = spec.query_limit {
        config = config.with_query_limit(limit);
    }
    if let Some(weight) = spec.prominence_weight {
        config = config.with_ranking(Ranking::Prominence { weight });
    }
    if let Some(index) = &spec.index {
        let kind = match index.as_str() {
            "grid" => IndexKind::Grid,
            "kdtree" => IndexKind::KdTree,
            "brute" => IndexKind::Brute,
            other => {
                return Err(format!(
                    "{id}: unknown interface index `{other}` (grid, kdtree, brute)"
                ))
            }
        };
        config = config.with_index(kind);
    }
    Ok(config)
}

/// Stacks the configured decorators around a backend. Order (innermost
/// first): truncation, latency, rate limit — restrictions of the data
/// before restrictions of the transport, like a real flaky-but-throttled
/// endpoint.
fn decorate_boxed(
    mut backend: Box<dyn LbsBackend>,
    spec: Option<&BackendSpec>,
) -> Box<dyn LbsBackend> {
    let Some(spec) = spec else {
        return backend;
    };
    if let Some(every) = spec.truncate_every {
        backend = Box::new(TruncatingBackend::new(
            backend,
            every,
            spec.truncate_to.unwrap_or(1),
        ));
    }
    if let Some(ms) = spec.latency_ms {
        backend = Box::new(LatencyBackend::new(backend, Duration::from_millis(ms)));
    }
    if let Some(burst) = spec.rate_limit_burst {
        backend = Box::new(RateLimitedBackend::new(
            backend,
            burst,
            Duration::from_millis(spec.rate_limit_pause_ms.unwrap_or(1)),
        ));
    }
    backend
}

fn build_aggregate(id: &str, spec: &AggregateSpec) -> Result<Aggregate, String> {
    let mut parts: Vec<Selection> = Vec::new();
    if let Some(equals) = &spec.equals {
        for (attr, value) in equals {
            parts.push(Selection::TextEquals {
                attr: attr.clone(),
                value: value.clone(),
            });
        }
    }
    if let Some(flags) = &spec.flags {
        for (attr, expected) in flags {
            parts.push(Selection::Flag {
                attr: attr.clone(),
                expected: *expected,
            });
        }
    }
    if let Some(at_least) = &spec.at_least {
        for (attr, min) in at_least {
            parts.push(Selection::AtLeast {
                attr: attr.clone(),
                min: *min,
            });
        }
    }
    if let Some(region) = spec.region {
        parts.push(Selection::InRegion(rect_from(id, region)?));
    }
    let selection = match parts.len() {
        0 => Selection::All,
        1 => parts.pop().expect("length checked"),
        _ => Selection::And(parts),
    };
    match spec.kind.as_str() {
        "count" => Ok(Aggregate::count_where(selection)),
        "sum" | "avg" => {
            let attr = spec
                .attr
                .as_deref()
                .ok_or_else(|| format!("{id}: aggregate kind `{}` needs `attr`", spec.kind))?;
            Ok(if spec.kind == "sum" {
                Aggregate::sum_where(attr, selection)
            } else {
                Aggregate::avg_where(attr, selection)
            })
        }
        other => Err(format!(
            "{id}: unknown aggregate kind `{other}` (count, sum, avg)"
        )),
    }
}

/// The estimator an [`EstimatorSpec`] resolves to, with its fully-built
/// configuration.
enum EstimatorKind {
    Lr(LrLbsAggConfig),
    Lnr(LnrLbsAggConfig),
    Nno(NnoConfig),
}

/// Resolves and validates the estimator configuration of a spec (shared by
/// the batch and session paths, so they cannot diverge).
fn estimator_configs(
    id: &str,
    spec: &EstimatorSpec,
    interface_kind: &str,
    dataset: &Dataset,
    region: &Rect,
) -> Result<EstimatorKind, String> {
    let weighted_sampler = spec
        .weighted_grid
        .map(|[cols, rows]| {
            if cols == 0 || rows == 0 {
                return Err(format!("{id}: weighted_grid needs positive dimensions"));
            }
            Ok(DensityGrid::from_dataset(
                dataset,
                cols as usize,
                rows as usize,
                spec.weighted_smoothing.unwrap_or(0.1),
            ))
        })
        .transpose()?;
    match spec.algorithm.as_str() {
        "lr" | "nno" if interface_kind != "lr" => Err(format!(
            "{id}: estimator `{}` needs `interface.kind = \"lr\"` (locations returned)",
            spec.algorithm
        )),
        "lr" => {
            let mut config = match spec.ablation_level {
                Some(level) => {
                    if level > 4 {
                        return Err(format!("{id}: ablation_level must be 0..=4, got {level}"));
                    }
                    LrLbsAggConfig::ablation_level(level)
                }
                None => LrLbsAggConfig::default(),
            };
            if let Some(h) = spec.fixed_h {
                config = LrLbsAggConfig {
                    h_selection: lbs_core::HSelection::Fixed(h),
                    ..config
                };
            }
            config.weighted_sampler = weighted_sampler;
            Ok(EstimatorKind::Lr(config))
        }
        "nno" => Ok(EstimatorKind::Nno(NnoConfig::default())),
        "lnr" => {
            let delta = lnr_delta(region);
            Ok(EstimatorKind::Lnr(LnrLbsAggConfig {
                delta,
                delta_prime: delta * 10.0,
                weighted_sampler,
                ..LnrLbsAggConfig::default()
            }))
        }
        other => Err(format!(
            "{id}: unknown estimator algorithm `{other}` (lr, lnr, nno)"
        )),
    }
}

fn describe_session(spec: &SessionSpec) -> String {
    let mut parts = Vec::new();
    if let Some(wave) = spec.wave_size {
        parts.push(format!("wave size {wave}"));
    }
    if let Some(target) = spec.target_ci_halfwidth {
        parts.push(format!("target CI half-width {target}"));
    }
    if let Some(ms) = spec.max_wall_ms {
        parts.push(format!("wall cap {ms} ms"));
    }
    if parts.is_empty() {
        "session: batch-equivalent (no overrides)".to_string()
    } else {
        format!("session: {}", parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ScenarioContext {
        ScenarioContext {
            scale: Scale::Micro,
            seed: 2015,
            threads: 1,
            smoke: false,
        }
    }

    fn parse_scenario(toml: &str) -> Scenario {
        let value = toml_lite::parse(toml).expect("toml");
        let s = Scenario::from_value(&value).expect("deserialize");
        s.validate().expect("validate");
        s
    }

    #[test]
    fn builtin_scenario_round_trips() {
        let s = parse_scenario("id = \"fig11-spec\"\nexperiment = \"fig11\"\n");
        assert_eq!(s.experiment.as_deref(), Some("fig11"));
        let result = run_scenario(&s, &ctx()).expect("run");
        assert_eq!(result.id, "fig11-spec");
        // Same rows as the hard-coded path.
        let direct = run_experiment_threaded("fig11", Scale::Micro, 2015, 1);
        assert_eq!(result.to_csv(), direct.to_csv());
    }

    #[test]
    fn declarative_scenario_runs_end_to_end() {
        let s = parse_scenario(
            r#"
id = "decl-count"
seed = 7

[dataset]
model = "uniform"
size = 80
bbox = [0.0, 0.0, 120.0, 120.0]

[interface]
kind = "lr"
k = 5

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 150
repetitions = 2
"#,
        );
        let result = run_scenario(&s, &ctx()).expect("run");
        assert_eq!(result.rows.len(), 2);
        assert!(result.mean_reported_rel_error().is_some());
        assert!(result.max_reported_cost().unwrap() >= 150);
    }

    #[test]
    fn selection_conditions_flow_into_the_aggregate() {
        let spec = AggregateSpec {
            kind: "count".into(),
            attr: None,
            equals: Some(
                [("category".to_string(), "school".to_string())]
                    .into_iter()
                    .collect(),
            ),
            flags: None,
            at_least: None,
            region: Some([0.0, 0.0, 10.0, 10.0]),
        };
        let agg = build_aggregate("t", &spec).expect("aggregate");
        assert!(matches!(agg.selection, Selection::And(ref v) if v.len() == 2));
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_name() {
        let value = toml_lite::parse("id = \"x\"\nexperimnt = \"fig11\"\n").unwrap();
        let err = Scenario::from_value(&value).unwrap_err();
        assert!(err.to_string().contains("experimnt"), "{err}");

        let value =
            toml_lite::parse("id = \"x\"\n[dataset]\nmodel = \"grid\"\nsize = 10\nrowz = 3\n")
                .unwrap();
        let err = Scenario::from_value(&value).unwrap_err();
        assert!(err.to_string().contains("rowz"), "{err}");
    }

    #[test]
    fn validation_catches_structural_mistakes() {
        // Builtin + declarative sections.
        let value = toml_lite::parse(
            "id = \"x\"\nexperiment = \"fig11\"\n[dataset]\nmodel = \"uniform\"\nsize = 5\n",
        )
        .unwrap();
        let s = Scenario::from_value(&value).unwrap();
        assert!(s.validate().unwrap_err().contains("mutually exclusive"));

        // Declarative with a missing section.
        let value =
            toml_lite::parse("id = \"x\"\n[dataset]\nmodel = \"uniform\"\nsize = 5\n").unwrap();
        let s = Scenario::from_value(&value).unwrap();
        assert!(s.validate().unwrap_err().contains("[interface]"));

        // Unknown experiment.
        let value = toml_lite::parse("id = \"x\"\nexperiment = \"fig99\"\n").unwrap();
        let s = Scenario::from_value(&value).unwrap();
        assert!(s.validate().unwrap_err().contains("fig99"));

        // Bad id.
        let value = toml_lite::parse("id = \"bad id!\"\nexperiment = \"fig11\"\n").unwrap();
        let s = Scenario::from_value(&value).unwrap();
        assert!(s.validate().unwrap_err().contains("file name"));
    }

    #[test]
    fn estimator_interface_mismatch_is_a_friendly_error() {
        let s = parse_scenario(
            r#"
id = "mismatch"

[dataset]
model = "uniform"
size = 30

[interface]
kind = "lnr"

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 50
"#,
        );
        let err = run_scenario(&s, &ctx()).unwrap_err();
        assert!(err.contains("interface.kind"), "{err}");
    }

    #[test]
    fn hard_query_limit_meters_each_repetition_separately() {
        // `budget` is per-repetition, so a hard `query_limit` only slightly
        // above it must not starve the later repetitions (the service used
        // to be built once, its limit silently spanning all reps).
        let s = parse_scenario(
            r#"
id = "limited-reps"

[dataset]
model = "uniform"
size = 60

[interface]
kind = "lr"
k = 5
query_limit = 500

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 400
repetitions = 3
"#,
        );
        let result = run_scenario(&s, &ctx()).expect("all repetitions complete");
        assert_eq!(result.rows.len(), 3);
    }

    #[test]
    fn dataset_keys_inapplicable_to_the_model_are_rejected() {
        let s = parse_scenario(
            r#"
id = "stray-knob"

[dataset]
model = "usa_pois"
size = 50
jitter = 0.5

[interface]
kind = "lr"

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 50
"#,
        );
        let err = run_scenario(&s, &ctx()).unwrap_err();
        assert!(err.contains("jitter") && err.contains("usa_pois"), "{err}");

        let s = parse_scenario(
            r#"
id = "stray-knob-2"

[dataset]
model = "wechat_users"
size = 50
starbucks = 3

[interface]
kind = "lnr"

[aggregate]
kind = "count"

[estimator]
algorithm = "lnr"
budget = 50
"#,
        );
        let err = run_scenario(&s, &ctx()).unwrap_err();
        assert!(err.contains("starbucks"), "{err}");
    }

    #[test]
    fn smoke_caps_declarative_scenarios() {
        let s = parse_scenario(
            r#"
id = "smoke-cap"

[dataset]
model = "uniform"
size = 5000

[interface]
kind = "lr"

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 100000
repetitions = 4
"#,
        );
        let smoke_ctx = ScenarioContext {
            smoke: true,
            ..ctx()
        };
        let result = run_scenario(&s, &smoke_ctx).expect("run");
        assert_eq!(result.rows.len(), 1, "smoke caps repetitions");
        // Budget cap: cost stays in the smoke ballpark, not 100k.
        assert!(result.max_reported_cost().unwrap() < 2 * SMOKE_MAX_BUDGET);
    }

    fn cache_scenario(id: &str, backend: &str) -> Scenario {
        parse_scenario(&format!(
            r#"
id = "{id}"
seed = 7

[dataset]
model = "uniform"
size = 80
bbox = [0.0, 0.0, 120.0, 120.0]

[interface]
kind = "lr"
k = 5

[backend]
{backend}

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 150
repetitions = 2
"#
        ))
    }

    #[test]
    fn cache_knob_validation_names_every_mistake() {
        let reject = |backend: &str, needle: &str| {
            let toml = format!(
                "id = \"x\"\n[dataset]\nmodel = \"uniform\"\nsize = 5\n[interface]\nkind = \"lr\"\n\
                 [aggregate]\nkind = \"count\"\n[estimator]\nalgorithm = \"lr\"\nbudget = 10\n\
                 [backend]\n{backend}\n"
            );
            let value = toml_lite::parse(&toml).expect("toml");
            let s = Scenario::from_value(&value).expect("deserialize");
            let err = s.validate().unwrap_err();
            assert!(err.contains(needle), "backend `{backend}`: {err}");
        };
        // The composition order with a rate limiter is semantic, so an
        // implicit choice is refused by name.
        reject(
            "cache = \"shared\"\nrate_limit_burst = 10",
            "ambiguous backend stack",
        );
        // Ordinal-keyed truncation would poison the cache.
        reject(
            "cache = \"private\"\ntruncate_every = 3",
            "ambiguous backend stack",
        );
        reject("cache = \"sometimes\"", "unknown backend cache");
        reject(
            "cache = \"shared\"\nrate_limit_burst = 10\ncache_order = \"outside\"",
            "unknown backend cache_order",
        );
        reject(
            "cache_order = \"cache_outside\"\nrate_limit_burst = 10",
            "does not apply",
        );
        reject(
            "cache = \"shared\"\ncache_order = \"cache_outside\"",
            "does not apply",
        );
        reject("cache_hits_metered = false", "does not apply");
        // Both explicit orders are accepted.
        for order in ["cache_outside", "cache_inside"] {
            cache_scenario(
                "ordered",
                &format!(
                    "cache = \"shared\"\nrate_limit_burst = 64\nrate_limit_pause_ms = 0\n\
                     cache_order = \"{order}\""
                ),
            );
        }
    }

    #[test]
    fn cached_runs_are_bit_identical_to_uncached_runs() {
        let baseline = run_scenario(&cache_scenario("c-off", "cache = \"off\""), &ctx()).unwrap();
        for backend in [
            "cache = \"private\"",
            "cache = \"shared\"",
            "cache = \"shared\"\ncache_hits_metered = false",
            "cache = \"shared\"\nrate_limit_burst = 64\nrate_limit_pause_ms = 0\ncache_order = \"cache_outside\"",
            "cache = \"shared\"\nrate_limit_burst = 64\nrate_limit_pause_ms = 0\ncache_order = \"cache_inside\"",
        ] {
            let cached = run_scenario(&cache_scenario("c-on", backend), &ctx()).unwrap();
            assert_eq!(baseline.rows.len(), cached.rows.len());
            for (a, b) in baseline.rows.iter().zip(&cached.rows) {
                for col in ["estimate", "ground truth", "query cost", "samples"] {
                    assert_eq!(a.get(col), b.get(col), "{backend}: column {col}");
                }
            }
        }
    }

    #[test]
    fn cached_scenarios_report_their_cache_stats() {
        let result = run_scenario(&cache_scenario("c-note", "cache = \"shared\""), &ctx()).unwrap();
        assert!(
            result.notes.iter().any(|n| n.contains("answer cache:")),
            "notes: {:?}",
            result.notes
        );
    }

    #[test]
    fn shared_cache_sees_hits_when_a_repetition_is_replayed() {
        let s = cache_scenario("c-replay", "cache = \"shared\"");
        let workload = build_workload(&s, &ctx()).unwrap();
        let cache = AnswerCache::unbounded();
        let mut estimates = Vec::new();
        for _ in 0..2 {
            let backend = workload
                .backend_with_budget_and_cache(workload.fresh_budget(), Some(cache.share()));
            let mut session = workload
                .start_session(backend, workload.session_config(1, 0))
                .unwrap();
            while !session.is_finished() {
                session.step();
            }
            let estimate = session.finalize().unwrap();
            estimates.push((estimate.value.to_bits(), estimate.query_cost));
        }
        assert_eq!(estimates[0], estimates[1], "replay is bit-identical");
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "replaying one repetition must hit: {stats:?}"
        );
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn mutating_scenario_recomputes_truth_and_stays_consistent() {
        let s = parse_scenario(
            r#"
id = "mutating"
seed = 11

[dataset]
model = "uniform"
size = 60
bbox = [0.0, 0.0, 100.0, 100.0]

[interface]
kind = "lr"
k = 5

[backend]
cache = "shared"

[aggregate]
kind = "count"

[estimator]
algorithm = "lr"
budget = 120
repetitions = 3

[mutations]
inserts_per_rep = 7
deletes_per_rep = 2
"#,
        );
        let result = run_scenario(&s, &ctx()).expect("run");
        assert_eq!(result.rows.len(), 3);
        // 7 inserts minus 2 deletes per boundary: truth grows by 5 each rep.
        let truths: Vec<&str> = result
            .rows
            .iter()
            .map(|r| r.get("ground truth").unwrap())
            .collect();
        assert_eq!(truths[0], "60.00");
        assert_eq!(truths[1], "65.00");
        assert_eq!(truths[2], "70.00");
    }

    #[test]
    fn mutations_without_any_stream_are_rejected() {
        let value = toml_lite::parse(
            "id = \"x\"\n[dataset]\nmodel = \"uniform\"\nsize = 5\n[interface]\nkind = \"lr\"\n\
             [aggregate]\nkind = \"count\"\n[estimator]\nalgorithm = \"lr\"\nbudget = 10\n\
             [mutations]\n",
        )
        .unwrap();
        let s = Scenario::from_value(&value).expect("deserialize");
        let err = s.validate().unwrap_err();
        assert!(err.contains("inserts_per_rep"), "{err}");
    }
}
