//! Minimal TOML-subset parser for scenario files.
//!
//! The build environment vendors no TOML crate, so this module parses the
//! small, conservative subset the scenario schema actually uses and emits a
//! [`serde::Value`] tree for typed deserialization:
//!
//! * `# comments` (full-line and trailing),
//! * `[table]` and `[nested.table]` headers,
//! * `key = value` pairs with bare keys,
//! * strings (`"..."` with `\" \\ \n \t` escapes), booleans, integers,
//!   floats, and (nested) arrays of those.
//!
//! Deliberately unsupported (a clear error is raised): arrays of tables
//! (`[[x]]`), inline tables (`{...}`), dotted keys, multi-line strings,
//! dates. Scenario files needing more structure can always be written as
//! plain JSON instead — the loader accepts both.

use serde::Value;

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

type Map = Vec<(String, Value)>;

/// Parses a TOML-subset document into a [`serde::Value`] map tree.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root: Map = Vec::new();
    let mut current_path: Vec<String> = Vec::new();

    for (index, raw) in input.lines().enumerate() {
        let line_no = index + 1;
        let err = |message: String| TomlError {
            line: line_no,
            message,
        };
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix('[') {
            if rest.starts_with('[') {
                return Err(err(
                    "arrays of tables ([[...]]) are not supported; use JSON".into(),
                ));
            }
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated table header".into()))?;
            let path: Vec<String> = inner
                .split('.')
                .map(|part| part.trim().to_string())
                .collect();
            if path.iter().any(|p| p.is_empty() || !is_bare_key(p)) {
                return Err(err(format!("invalid table name `{inner}`")));
            }
            // Create (or re-enter) the table so empty sections still exist.
            navigate(&mut root, &path).map_err(err)?;
            current_path = path;
            continue;
        }

        let Some(eq) = line.find('=') else {
            return Err(err(format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !is_bare_key(key) {
            return Err(err(format!(
                "invalid key `{key}` (bare keys only; quote values, not keys)"
            )));
        }
        let mut cursor = Cursor::new(line[eq + 1..].trim());
        let value = cursor.parse_value().map_err(&err)?;
        cursor.skip_ws();
        if !cursor.is_done() {
            return Err(err(format!(
                "trailing characters after value: `{}`",
                cursor.rest()
            )));
        }
        let table = navigate(&mut root, &current_path).map_err(err)?;
        if table.iter().any(|(k, _)| k == key) {
            return Err(err(format!("duplicate key `{key}`")));
        }
        table.push((key.to_string(), value));
    }

    Ok(Value::Map(root))
}

/// Removes a trailing `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    key.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Walks (creating as needed) the nested map at `path`.
fn navigate<'a>(root: &'a mut Map, path: &[String]) -> Result<&'a mut Map, String> {
    let mut table = root;
    for part in path {
        if !table.iter().any(|(k, _)| k == part) {
            table.push((part.clone(), Value::Map(Vec::new())));
        }
        let entry = table
            .iter_mut()
            .find(|(k, _)| k == part)
            .map(|(_, v)| v)
            .expect("entry just ensured");
        table = match entry {
            Value::Map(m) => m,
            _ => return Err(format!("`{part}` is both a value and a table")),
        };
    }
    Ok(table)
}

/// Character cursor over one value expression.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn is_done(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn rest(&self) -> String {
        self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .collect()
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("missing value".into()),
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('{') => Err("inline tables ({...}) are not supported; use a [section]".into()),
            Some(_) => self.parse_scalar(),
        }
    }

    fn parse_string(&mut self) -> Result<Value, String> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(format!("unterminated string in `{}`", self.src)),
                Some('"') => return Ok(Value::Str(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => {
                        return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' ')))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.bump(); // opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err("unterminated array".into()),
                Some(']') => {
                    self.bump();
                    return Ok(Value::Seq(items));
                }
                _ => {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {}
                        None => return Err("unterminated array".into()),
                        Some(other) => {
                            return Err(format!("expected `,` or `]` in array, got `{other}`"))
                        }
                    }
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != ',' && c != ']') {
            self.pos += 1;
        }
        let token: String = self.chars[start..self.pos].iter().collect();
        match token.as_str() {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        let cleaned = token.replace('_', "");
        let looks_numeric = cleaned
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.');
        if !looks_numeric {
            return Err(format!("invalid value `{token}` (strings must be quoted)"));
        }
        if cleaned.contains(['.', 'e', 'E']) {
            let f: f64 = cleaned
                .parse()
                .map_err(|_| format!("invalid number `{token}`"))?;
            if !f.is_finite() {
                return Err(format!("non-finite number `{token}`"));
            }
            Ok(Value::F64(f))
        } else {
            let i: i64 = cleaned
                .parse()
                .map_err(|_| format!("invalid number `{token}`"))?;
            Ok(Value::I64(i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
        let mut cur = v;
        for key in path {
            cur = cur.get(key).unwrap_or_else(|| panic!("missing `{key}`"));
        }
        cur
    }

    #[test]
    fn parses_the_full_subset() {
        let doc = r#"
# A scenario file.
id = "demo"            # trailing comment
seed = 2015
ratio = 0.25
negative = -3
big = 1_000_000
flag = true
bbox = [0.0, 0.0, 200.0, 200.0]
nested = [[1, 2], [3]]
text = "with \"quotes\" and # not a comment"

[dataset]
model = "grid"
size = 500

[dataset.extra]
note = "nested tables work"
"#;
        let v = parse(doc).expect("parse");
        assert_eq!(get(&v, &["id"]), &Value::Str("demo".into()));
        assert_eq!(get(&v, &["seed"]), &Value::I64(2015));
        assert_eq!(get(&v, &["ratio"]), &Value::F64(0.25));
        assert_eq!(get(&v, &["negative"]), &Value::I64(-3));
        assert_eq!(get(&v, &["big"]), &Value::I64(1_000_000));
        assert_eq!(get(&v, &["flag"]), &Value::Bool(true));
        let Value::Seq(bbox) = get(&v, &["bbox"]) else {
            panic!("bbox not a sequence")
        };
        assert_eq!(bbox[3], Value::F64(200.0));
        let Value::Seq(nested) = get(&v, &["nested"]) else {
            panic!("nested not a sequence")
        };
        assert_eq!(nested[0], Value::Seq(vec![Value::I64(1), Value::I64(2)]));
        assert_eq!(
            get(&v, &["text"]),
            &Value::Str("with \"quotes\" and # not a comment".into())
        );
        assert_eq!(get(&v, &["dataset", "model"]), &Value::Str("grid".into()));
        assert_eq!(get(&v, &["dataset", "size"]), &Value::I64(500));
        assert_eq!(
            get(&v, &["dataset", "extra", "note"]),
            &Value::Str("nested tables work".into())
        );
    }

    #[test]
    fn empty_sections_still_exist() {
        let v = parse("[backend]\n").expect("parse");
        assert_eq!(v.get("backend"), Some(&Value::Map(Vec::new())));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("good = 1\nbad line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse("x = \"unterminated\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = parse("[[points]]\n").unwrap_err();
        assert!(err.message.contains("arrays of tables"));

        let err = parse("x = {a = 1}\n").unwrap_err();
        assert!(err.message.contains("inline tables"));

        let err = parse("x = 1\nx = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = parse("x = bareword\n").unwrap_err();
        assert!(err.message.contains("quoted"));

        let err = parse("x = [1, 2\n").unwrap_err();
        assert!(err.message.contains("unterminated array"));
    }

    #[test]
    fn table_and_value_collisions_are_rejected() {
        let err = parse("x = 1\n[x]\ny = 2\n").unwrap_err();
        assert!(err.message.contains("both a value and a table"));
    }
}
