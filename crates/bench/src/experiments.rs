//! One function per paper artefact (Figures 11–21, Table 1).
//!
//! Conventions shared by the cost/accuracy experiments:
//!
//! * The paper plots *query cost needed to reach a relative error*; running
//!   that directly requires a search over budgets, so the harness reports the
//!   transposed curve — *relative error achieved at each budget of a ladder*
//!   — which carries the same information (who is cheaper at equal accuracy,
//!   and by roughly what factor). `EXPERIMENTS.md` documents the mapping.
//! * Every configuration is repeated [`Scale::repetitions`] times with
//!   different seeds and the mean relative error is reported.
//! * All experiments are deterministic given `(scale, seed)` — including
//!   across thread counts: every estimator run goes through the
//!   [`SampleDriver`], whose results are bit-identical whether it fans out to
//!   1 worker or 64 (`repro --threads N` only changes wall-clock time).

use rand::rngs::StdRng;
use rand::SeedableRng;

use lbs_core::lnr::cell::LnrExploreConfig;
use lbs_core::lnr::locate::LocateConfig;
use lbs_core::lnr::{explore_cell as lnr_explore_cell, infer_position, RankOracle};
use lbs_core::{
    Aggregate, EngineReport, Estimate, LnrLbsAgg, LnrLbsAggConfig, LrLbsAgg, LrLbsAggConfig,
    NnoBaseline, NnoConfig, SampleDriver, Selection,
};
use lbs_data::{attrs, Dataset, DensityGrid, ScenarioBuilder};
use lbs_geom::{voronoi_diagram, Point, Rect};
use lbs_service::{PassThroughFilter, ServiceConfig, SimulatedLbs};

use crate::result::{ExperimentResult, Row};
use crate::scale::Scale;

/// Labelled estimator runs compared within one experiment: each closure maps
/// a repetition seed to a finished [`Estimate`].
type NamedRuns<'a> = Vec<(&'a str, Box<dyn Fn(u64) -> Estimate + 'a>)>;

/// Identifiers of every experiment the harness can run, in paper order.
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
        "fig21", "table1",
    ]
}

/// Runs one experiment by id on a single worker thread.
///
/// # Panics
/// Panics when the id is unknown; use [`all_experiment_ids`] to enumerate
/// valid ones.
pub fn run_experiment(id: &str, scale: Scale, seed: u64) -> ExperimentResult {
    run_experiment_threaded(id, scale, seed, 1)
}

/// Runs one experiment by id, fanning estimator samples across `threads`
/// worker threads (`repro --threads N`).
///
/// The result is bit-identical for every `threads` value — only the wall
/// clock changes. `threads == 0` means "use all available cores".
///
/// # Panics
/// Panics when the id is unknown; use [`all_experiment_ids`] to enumerate
/// valid ones.
pub fn run_experiment_threaded(
    id: &str,
    scale: Scale,
    seed: u64,
    threads: usize,
) -> ExperimentResult {
    let driver = SampleDriver::new(threads);
    match id {
        "fig11" => fig11_voronoi_decomposition(scale, seed),
        "fig12" => fig12_convergence(scale, seed, &driver),
        "fig13" => fig13_sampling_strategy(scale, seed, &driver),
        "fig14" => fig14_count_schools(scale, seed, &driver),
        "fig15" => fig15_count_restaurants(scale, seed, &driver),
        "fig16" => fig16_sum_enrollment(scale, seed, &driver),
        "fig17" => fig17_avg_rating_region(scale, seed, &driver),
        "fig18" => fig18_database_size(scale, seed, &driver),
        "fig19" => fig19_varying_k(scale, seed, &driver),
        "fig20" => fig20_error_reduction_ablation(scale, seed, &driver),
        "fig21" => fig21_localization_accuracy(scale, seed),
        "table1" => table1_online_experiments(scale, seed, &driver),
        other => panic!("unknown experiment id: {other}"),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn usa_dataset(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    ScenarioBuilder::usa_pois(scale.poi_count())
        .with_starbucks(scale.poi_count() / 40)
        .build(&mut rng)
}

fn lr_service(dataset: &Dataset, k: usize) -> SimulatedLbs {
    SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(k))
}

fn lnr_service(dataset: &Dataset, k: usize) -> SimulatedLbs {
    SimulatedLbs::new(dataset.clone(), ServiceConfig::lnr_lbs(k))
}

/// Coarse bracket width for LNR experiments: scaled to the region so that the
/// per-edge cost stays around `3·log2(b/δ)` queries regardless of scale.
pub(crate) fn lnr_delta(region: &Rect) -> f64 {
    (region.diagonal() * 2e-4).max(0.01)
}

fn run_lr(
    service: &SimulatedLbs,
    region: &Rect,
    agg: &Aggregate,
    budget: u64,
    seed: u64,
    config: LrLbsAggConfig,
    driver: &SampleDriver,
) -> Estimate {
    let mut est = LrLbsAgg::new(config);
    est.estimate_parallel(service, region, agg, budget, seed, driver)
        .expect("LR estimation should produce at least one sample")
}

fn run_lnr(
    service: &SimulatedLbs,
    region: &Rect,
    agg: &Aggregate,
    budget: u64,
    seed: u64,
    mut config: LnrLbsAggConfig,
    driver: &SampleDriver,
) -> Estimate {
    config.delta = lnr_delta(region);
    config.delta_prime = config.delta * 10.0;
    let mut est = LnrLbsAgg::new(config);
    est.estimate_parallel(service, region, agg, budget, seed, driver)
        .expect("LNR estimation should produce at least one sample")
}

fn run_nno(
    service: &SimulatedLbs,
    region: &Rect,
    agg: &Aggregate,
    budget: u64,
    seed: u64,
    driver: &SampleDriver,
) -> Estimate {
    let mut est = NnoBaseline::new(NnoConfig::default());
    est.estimate_parallel(service, region, agg, budget, seed, driver)
        .expect("baseline estimation should produce at least one sample")
}

/// Mean relative error of an algorithm over the scale's repetitions,
/// summing each run's cell-engine counters into `engine`.
fn mean_rel_error<F: Fn(u64) -> Estimate>(
    scale: Scale,
    truth: f64,
    engine: &mut EngineReport,
    run: F,
) -> (f64, u64) {
    let mut err_sum = 0.0;
    let mut cost_sum = 0u64;
    let reps = scale.repetitions();
    for rep in 0..reps {
        let est = run(1_000 + rep as u64);
        err_sum += est.relative_error(truth);
        cost_sum += est.query_cost;
        engine.add(&est.engine);
    }
    (err_sum / reps as f64, cost_sum / reps as u64)
}

/// The cost-versus-error comparison shared by Figures 14–17.
fn cost_error_comparison(
    id: &str,
    title: &str,
    scale: Scale,
    seed: u64,
    agg: Aggregate,
    region_override: Option<Rect>,
    driver: &SampleDriver,
) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let region = region_override.unwrap_or_else(|| dataset.bbox());
    let truth = agg.ground_truth(&dataset, &region);
    let lr = lr_service(&dataset, 10);
    let lnr = lnr_service(&dataset, 10);

    let mut result = ExperimentResult::new(id, title);
    result.note(format!(
        "dataset: {} POIs, ground truth {truth:.1}, budgets reported as error-at-budget",
        dataset.len()
    ));

    let mut engine = EngineReport::default();
    for budget in scale.budget_ladder() {
        let (nno_err, nno_cost) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_nno(&lr, &region, &agg, budget, seed ^ s, driver)
        });
        let (lr_err, lr_cost) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_lr(
                &lr,
                &region,
                &agg,
                budget,
                seed ^ s,
                LrLbsAggConfig::default(),
                driver,
            )
        });
        let lnr_budget = budget * (scale.lnr_budget() / scale.lr_budget()).max(1);
        let (lnr_err, lnr_cost) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_lnr(
                &lnr,
                &region,
                &agg,
                lnr_budget,
                seed ^ s,
                LnrLbsAggConfig::default(),
                driver,
            )
        });
        result.push(
            Row::new()
                .with("budget", budget)
                .with("LR-LBS-NNO rel err", format!("{nno_err:.3}"))
                .with("LR-LBS-AGG rel err", format!("{lr_err:.3}"))
                .with("LNR-LBS-AGG rel err", format!("{lnr_err:.3}"))
                .with("NNO cost", nno_cost)
                .with("LR cost", lr_cost)
                .with("LNR cost", lnr_cost),
        );
    }
    result.add_engine(&engine);
    result
}

// ---------------------------------------------------------------------------
// Figure 11 — Voronoi decomposition of Starbucks in the US
// ---------------------------------------------------------------------------

/// Figure 11: the Voronoi diagram over the planted "Starbucks" POIs; the
/// paper shows the picture, the harness reports the cell-area distribution
/// (its point being the enormous spread between urban and rural cells).
pub fn fig11_voronoi_decomposition(scale: Scale, seed: u64) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let starbucks: Vec<Point> = dataset
        .tuples()
        .iter()
        .filter(|t| t.text_eq(attrs::BRAND, "Starbucks"))
        .map(|t| t.location)
        .collect();
    let diagram = voronoi_diagram(&starbucks, &dataset.bbox());
    let mut areas = diagram.cell_areas();
    areas.sort_by(|a, b| a.total_cmp(b));

    let mut result = ExperimentResult::new("fig11", "Voronoi decomposition of Starbucks in US");
    result.note(format!(
        "{} Starbucks cells over {:.0} km²",
        areas.len(),
        dataset.bbox().area()
    ));
    let percentile = |p: f64| -> f64 {
        if areas.is_empty() {
            return 0.0;
        }
        let idx = ((areas.len() - 1) as f64 * p).round() as usize;
        areas[idx]
    };
    let stats = [
        ("min", percentile(0.0)),
        ("p10", percentile(0.10)),
        ("median", percentile(0.50)),
        ("p90", percentile(0.90)),
        ("max", percentile(1.0)),
        (
            "mean",
            areas.iter().sum::<f64>() / areas.len().max(1) as f64,
        ),
    ];
    for (name, value) in stats {
        result.push(
            Row::new()
                .with("statistic", name)
                .with_f64("cell area km^2", value),
        );
    }
    let spread = percentile(1.0) / percentile(0.10).max(1e-9);
    result.push(
        Row::new()
            .with("statistic", "max/p10 spread")
            .with_f64("cell area km^2", spread),
    );
    result
}

// ---------------------------------------------------------------------------
// Figure 12 — unbiasedness / convergence trace
// ---------------------------------------------------------------------------

/// Figure 12: running COUNT(restaurants) estimate versus query cost for the
/// three algorithms against the ground truth.
pub fn fig12_convergence(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let region = dataset.bbox();
    let agg = Aggregate::count_restaurants();
    let truth = agg.ground_truth(&dataset, &region);
    let lr = lr_service(&dataset, 10);
    let lnr = lnr_service(&dataset, 10);

    let lr_est = run_lr(
        &lr,
        &region,
        &agg,
        scale.lr_budget(),
        seed,
        LrLbsAggConfig::default(),
        driver,
    );
    let nno_est = run_nno(&lr, &region, &agg, scale.lr_budget(), seed + 1, driver);
    let lnr_est = run_lnr(
        &lnr,
        &region,
        &agg,
        scale.lnr_budget(),
        seed + 2,
        LnrLbsAggConfig::default(),
        driver,
    );

    let mut result =
        ExperimentResult::new("fig12", "Unbiasedness of estimators (COUNT restaurants)");
    result.note(format!("ground truth {truth:.0}"));
    for est in [&nno_est, &lr_est, &lnr_est] {
        result.add_engine(&est.engine);
    }
    for (name, est) in [
        ("LR-LBS-NNO", &nno_est),
        ("LR-LBS-AGG", &lr_est),
        ("LNR-LBS-AGG", &lnr_est),
    ] {
        // Downsample the trace to at most 12 points per algorithm.
        let step = (est.trace.len() / 12).max(1);
        for point in est.trace.iter().step_by(step) {
            result.push(
                Row::new()
                    .with("algorithm", name)
                    .with("query cost", point.query_cost)
                    .with_f64("running estimate", point.estimate)
                    .with_f64("ground truth", truth),
            );
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Figure 13 — impact of the sampling strategy (uniform vs census-weighted)
// ---------------------------------------------------------------------------

/// Figure 13: COUNT(schools) with uniform versus density-weighted query
/// sampling, for both LR-LBS-AGG and LNR-LBS-AGG.
pub fn fig13_sampling_strategy(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let region = dataset.bbox();
    let agg = Aggregate::count_schools();
    let truth = agg.ground_truth(&dataset, &region);
    let grid = DensityGrid::from_dataset(&dataset, 64, 44, 0.1);
    let lr = lr_service(&dataset, 10);
    let lnr = lnr_service(&dataset, 10);
    let budget = scale.lr_budget();

    let mut result = ExperimentResult::new(
        "fig13",
        "Impact of sampling strategy (COUNT schools, US-census weighting)",
    );
    result.note(format!("ground truth {truth:.0}, budget {budget}"));

    let configs: NamedRuns<'_> = vec![
        (
            "LR-LBS-AGG (uniform)",
            Box::new(|s| {
                run_lr(
                    &lr,
                    &region,
                    &agg,
                    budget,
                    s,
                    LrLbsAggConfig::default(),
                    driver,
                )
            }),
        ),
        (
            "LR-LBS-AGG-US (weighted)",
            Box::new(|s| {
                run_lr(
                    &lr,
                    &region,
                    &agg,
                    budget,
                    s,
                    LrLbsAggConfig {
                        weighted_sampler: Some(grid.clone()),
                        ..LrLbsAggConfig::default()
                    },
                    driver,
                )
            }),
        ),
        (
            "LNR-LBS-AGG (uniform)",
            Box::new(|s| {
                run_lnr(
                    &lnr,
                    &region,
                    &agg,
                    scale.lnr_budget(),
                    s,
                    LnrLbsAggConfig::default(),
                    driver,
                )
            }),
        ),
        (
            "LNR-LBS-AGG-US (weighted)",
            Box::new(|s| {
                run_lnr(
                    &lnr,
                    &region,
                    &agg,
                    scale.lnr_budget(),
                    s,
                    LnrLbsAggConfig {
                        weighted_sampler: Some(grid.clone()),
                        ..LnrLbsAggConfig::default()
                    },
                    driver,
                )
            }),
        ),
    ];
    let mut engine = EngineReport::default();
    for (name, run) in configs {
        let (err, cost) = mean_rel_error(scale, truth, &mut engine, |s| run(seed ^ s));
        result.push(
            Row::new()
                .with("strategy", name)
                .with("budget", cost)
                .with("rel error", format!("{err:.3}")),
        );
    }
    result.add_engine(&engine);
    result
}

// ---------------------------------------------------------------------------
// Figures 14–17 — query cost versus relative error for four aggregates
// ---------------------------------------------------------------------------

/// Figure 14: COUNT(schools) in the US.
pub fn fig14_count_schools(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    cost_error_comparison(
        "fig14",
        "COUNT(schools): relative error at each query budget",
        scale,
        seed,
        Aggregate::count_schools(),
        None,
        driver,
    )
}

/// Figure 15: COUNT(restaurants) in the US.
pub fn fig15_count_restaurants(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    cost_error_comparison(
        "fig15",
        "COUNT(restaurants): relative error at each query budget",
        scale,
        seed,
        Aggregate::count_restaurants(),
        None,
        driver,
    )
}

/// Figure 16: SUM(enrollment) over schools in the US.
pub fn fig16_sum_enrollment(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    cost_error_comparison(
        "fig16",
        "SUM(school enrollment): relative error at each query budget",
        scale,
        seed,
        Aggregate::sum_school_enrollment(),
        None,
        driver,
    )
}

/// Figure 17: AVG(restaurant rating) inside a metropolitan sub-region
/// ("Austin, TX" in the paper).
pub fn fig17_avg_rating_region(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let bbox = dataset.bbox();
    // At reduced scales the literal Austin box holds too few POIs to define a
    // meaningful AVG, so the sub-region grows as the dataset shrinks (noted
    // in the output).
    let region = match scale {
        Scale::Paper => lbs_data::region::austin_tx(),
        _ => Rect::from_bounds(
            bbox.min_x + bbox.width() * 0.40,
            bbox.min_y + bbox.height() * 0.15,
            bbox.min_x + bbox.width() * 0.60,
            bbox.min_y + bbox.height() * 0.35,
        ),
    };
    let selection = Selection::And(vec![
        Selection::TextEquals {
            attr: attrs::CATEGORY.to_string(),
            value: "restaurant".to_string(),
        },
        Selection::InRegion(region),
    ]);
    let agg = Aggregate::avg_where(attrs::RATING, selection);
    let mut result = cost_error_comparison(
        "fig17",
        "AVG(restaurant rating) in a metro sub-region (Austin, TX analogue)",
        scale,
        seed,
        agg,
        None,
        driver,
    );
    result.note(format!(
        "sub-region {:.0} km x {:.0} km",
        region.width(),
        region.height()
    ));
    result
}

// ---------------------------------------------------------------------------
// Figure 18 — query cost versus database size
// ---------------------------------------------------------------------------

/// Figure 18: accuracy of COUNT(schools) at a fixed budget when the database
/// is subsampled to 25/50/75/100 % (the paper fixes the error and reports the
/// cost; the cost ladder of fig14 plus this transposed view carries the same
/// conclusion — database size barely matters for a sampling approach).
pub fn fig18_database_size(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    let full = usa_dataset(scale, seed);
    let region = full.bbox();
    let budget = scale.lr_budget();
    let agg = Aggregate::count_schools();

    let mut result = ExperimentResult::new(
        "fig18",
        "Varying database size (COUNT schools, fixed budget)",
    );
    result.note(format!("budget {budget} per run"));
    let mut rng = StdRng::seed_from_u64(seed + 99);
    let mut engine = EngineReport::default();
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let subset = if fraction < 1.0 {
            full.sample_fraction(fraction, &mut rng)
        } else {
            full.clone()
        };
        let truth = agg.ground_truth(&subset, &region);
        let lr = lr_service(&subset, 10);
        let lnr = lnr_service(&subset, 10);
        let (nno_err, _) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_nno(&lr, &region, &agg, budget, seed ^ s, driver)
        });
        let (lr_err, _) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_lr(
                &lr,
                &region,
                &agg,
                budget,
                seed ^ s,
                LrLbsAggConfig::default(),
                driver,
            )
        });
        let (lnr_err, _) = mean_rel_error(scale, truth, &mut engine, |s| {
            run_lnr(
                &lnr,
                &region,
                &agg,
                scale.lnr_budget(),
                seed ^ s,
                LnrLbsAggConfig::default(),
                driver,
            )
        });
        result.push(
            Row::new()
                .with("fraction of POIs", format!("{:.0}%", fraction * 100.0))
                .with("tuples", subset.len())
                .with("LR-LBS-NNO rel err", format!("{nno_err:.3}"))
                .with("LR-LBS-AGG rel err", format!("{lr_err:.3}"))
                .with("LNR-LBS-AGG rel err", format!("{lnr_err:.3}")),
        );
    }
    result.add_engine(&engine);
    result
}

// ---------------------------------------------------------------------------
// Figure 19 — varying k (fixed top-h levels versus the adaptive rule)
// ---------------------------------------------------------------------------

/// Figure 19: COUNT(schools) accuracy and per-sample cost when LR-LBS-AGG
/// uses a fixed top-h level of 1..5 versus the adaptive selection rule.
pub fn fig19_varying_k(scale: Scale, seed: u64, driver: &SampleDriver) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let region = dataset.bbox();
    let agg = Aggregate::count_schools();
    let truth = agg.ground_truth(&dataset, &region);
    let service = lr_service(&dataset, 10);
    let budget = scale.lr_budget();

    let mut result =
        ExperimentResult::new("fig19", "Varying k: fixed top-h versus adaptive selection");
    result.note(format!("ground truth {truth:.0}, budget {budget}"));
    let mut configs: Vec<(String, LrLbsAggConfig)> = (1..=5usize)
        .map(|h| (format!("fixed h={h}"), LrLbsAggConfig::fixed_h(h)))
        .collect();
    configs.push(("adaptive".to_string(), LrLbsAggConfig::default()));
    let mut engine = EngineReport::default();
    for (name, cfg) in configs {
        let mut err_sum = 0.0;
        let mut samples_sum = 0u64;
        let mut cost_sum = 0u64;
        for rep in 0..scale.repetitions() {
            let est = run_lr(
                &service,
                &region,
                &agg,
                budget,
                seed ^ (500 + rep as u64),
                cfg.clone(),
                driver,
            );
            err_sum += est.relative_error(truth);
            samples_sum += est.samples;
            cost_sum += est.query_cost;
            engine.add(&est.engine);
        }
        let reps = scale.repetitions() as f64;
        result.push(
            Row::new()
                .with("configuration", name)
                .with("rel error", format!("{:.3}", err_sum / reps))
                .with_f64("samples", samples_sum as f64 / reps)
                .with_f64(
                    "queries per sample",
                    cost_sum as f64 / samples_sum.max(1) as f64,
                ),
        );
    }
    result.add_engine(&engine);
    result
}

// ---------------------------------------------------------------------------
// Figure 20 — ablation of the error-reduction strategies
// ---------------------------------------------------------------------------

/// Figure 20: LR-LBS-AGG with the error-reduction techniques enabled one by
/// one (level 0 = none, level 4 = all).
pub fn fig20_error_reduction_ablation(
    scale: Scale,
    seed: u64,
    driver: &SampleDriver,
) -> ExperimentResult {
    let dataset = usa_dataset(scale, seed);
    let region = dataset.bbox();
    let agg = Aggregate::count_schools();
    let truth = agg.ground_truth(&dataset, &region);
    let service = lr_service(&dataset, 10);
    let budget = scale.lr_budget();

    let mut result =
        ExperimentResult::new("fig20", "Query savings of the error-reduction strategies");
    result.note("level 0: none; +fast init; +history; +adaptive h; +MC bounds".to_string());
    let mut engine = EngineReport::default();
    for level in 0..=4usize {
        let mut err_sum = 0.0;
        let mut samples_sum = 0u64;
        for rep in 0..scale.repetitions() {
            let est = run_lr(
                &service,
                &region,
                &agg,
                budget,
                seed ^ (900 + rep as u64),
                LrLbsAggConfig::ablation_level(level),
                driver,
            );
            err_sum += est.relative_error(truth);
            samples_sum += est.samples;
            engine.add(&est.engine);
        }
        let reps = scale.repetitions() as f64;
        result.push(
            Row::new()
                .with("variant", format!("LR-LBS-AGG-{level}"))
                .with("rel error", format!("{:.3}", err_sum / reps))
                .with_f64("samples within budget", samples_sum as f64 / reps),
        );
    }
    result.add_engine(&engine);
    result
}

// ---------------------------------------------------------------------------
// Figure 21 — localization accuracy
// ---------------------------------------------------------------------------

/// Figure 21: distribution of the position-inference error over a
/// Google-Places-like interface (treated as rank-only, no obfuscation) and a
/// WeChat-like interface (with location obfuscation).
pub fn fig21_localization_accuracy(scale: Scale, seed: u64) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig21", "Localization accuracy of tuple-position inference");
    let buckets = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0];

    let mut run_service = |name: &str, dataset: &Dataset, config: ServiceConfig| {
        let service = SimulatedLbs::new(dataset.clone(), config);
        let region = dataset.bbox();
        let delta = lnr_delta(&region);
        let mut errors: Vec<f64> = Vec::new();
        let mut failures = 0usize;
        for t in dataset.tuples().iter().take(scale.localization_targets()) {
            let mut oracle = RankOracle::new(&service, 1);
            let explore_cfg = LnrExploreConfig {
                delta,
                delta_prime: delta * 10.0,
                ..LnrExploreConfig::default()
            };
            let cell = match lnr_explore_cell(&mut oracle, t.id, t.location, &region, &explore_cfg)
            {
                Ok(c) => c,
                Err(_) => {
                    failures += 1;
                    continue;
                }
            };
            let locate_cfg = LocateConfig {
                delta,
                probe_step: (delta * 20.0).max(0.5),
                ..LocateConfig::default()
            };
            match infer_position(&mut oracle, t.id, &cell, &region, &locate_cfg) {
                Ok(Some(p)) => errors.push(p.distance(&t.location)),
                _ => failures += 1,
            }
        }
        let total = (errors.len() + failures).max(1);
        let mut previous = 0.0;
        for bucket in buckets {
            let within = errors.iter().filter(|e| **e <= bucket).count();
            let share = within as f64 / total as f64;
            result.push(
                Row::new()
                    .with("service", name)
                    .with("error <= km", bucket)
                    .with("cumulative %", format!("{:.1}", share * 100.0)),
            );
            previous = share;
        }
        result.push(
            Row::new()
                .with("service", name)
                .with("error <= km", "not located")
                .with("cumulative %", format!("{:.1}", 100.0 * (1.0 - previous))),
        );
        let _ = previous;
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let pois = ScenarioBuilder::usa_pois(scale.poi_count()).build(&mut rng);
    run_service(
        "Google-Places-like (no obfuscation)",
        &pois,
        ServiceConfig::lnr_lbs(10),
    );
    let users = ScenarioBuilder::wechat_users(scale.user_count()).build(&mut rng);
    run_service(
        "WeChat-like (50 m obfuscation)",
        &users,
        ServiceConfig::lnr_lbs(10).with_obfuscation(0.05),
    );
    result
}

// ---------------------------------------------------------------------------
// Table 1 — online experiments summary
// ---------------------------------------------------------------------------

/// Table 1: the paper's online demonstrations, reproduced against the
/// simulated Google Places / WeChat / Sina Weibo services, with the planted
/// ground truth that the real experiments could only approximate externally.
pub fn table1_online_experiments(
    scale: Scale,
    seed: u64,
    driver: &SampleDriver,
) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "table1",
        "Summary of online experiments (simulated services)",
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Google Places: COUNT of Starbucks (pass-through selection). -------
    let pois = usa_dataset(scale, seed);
    let region = pois.bbox();
    let budget = scale.lr_budget();
    let google = SimulatedLbs::new(
        pois.clone(),
        ServiceConfig::lr_lbs(10).with_max_radius(region.diagonal()),
    );
    let starbucks_truth = pois.count_where(|t| t.text_eq(attrs::BRAND, "Starbucks")) as f64;
    let filtered = google.filtered(&PassThroughFilter::equals(attrs::BRAND, "Starbucks"));
    let est = run_lr(
        &filtered,
        &region,
        &Aggregate::count_all(),
        budget,
        seed + 11,
        LrLbsAggConfig::default(),
        driver,
    );
    result.add_engine(&est.engine);
    result.push(
        Row::new()
            .with("LBS", "Google-Places-like")
            .with("aggregate", "COUNT(Starbucks in US)")
            .with_f64("estimate", est.value)
            .with_f64("ground truth", starbucks_truth)
            .with(
                "rel error",
                format!("{:.3}", est.relative_error(starbucks_truth)),
            )
            .with("budget", est.query_cost),
    );

    // --- Google Places: COUNT of restaurants open on Sundays in a metro. ---
    let metro = match scale {
        Scale::Paper => lbs_data::region::austin_tx(),
        _ => Rect::from_bounds(
            region.min_x + region.width() * 0.40,
            region.min_y + region.height() * 0.15,
            region.min_x + region.width() * 0.60,
            region.min_y + region.height() * 0.35,
        ),
    };
    let open_sunday = Aggregate::count_where(Selection::And(vec![
        Selection::TextEquals {
            attr: attrs::CATEGORY.to_string(),
            value: "restaurant".to_string(),
        },
        Selection::Flag {
            attr: attrs::OPEN_SUNDAY.to_string(),
            expected: true,
        },
    ]));
    let sunday_truth = open_sunday.ground_truth(&pois, &metro);
    let est = run_lr(
        &google,
        &metro,
        &open_sunday,
        budget,
        seed + 13,
        LrLbsAggConfig::default(),
        driver,
    );
    result.add_engine(&est.engine);
    result.push(
        Row::new()
            .with("LBS", "Google-Places-like")
            .with("aggregate", "COUNT(restaurants open Sundays, metro region)")
            .with_f64("estimate", est.value)
            .with_f64("ground truth", sunday_truth)
            .with(
                "rel error",
                format!("{:.3}", est.relative_error(sunday_truth.max(1.0))),
            )
            .with("budget", est.query_cost),
    );

    // --- WeChat and Weibo: user COUNT and gender ratio. ---------------------
    let mut user_rows = |name: &str, dataset: Dataset, k: usize| {
        let region = dataset.bbox();
        let service = SimulatedLbs::new(dataset.clone(), ServiceConfig::lnr_lbs(k));
        let count_truth = dataset.len() as f64;
        let male_truth = dataset.count_where(|t| t.text_eq(attrs::GENDER, "male")) as f64;
        let count_est = run_lnr(
            &service,
            &region,
            &Aggregate::count_all(),
            scale.lnr_budget(),
            seed + 17,
            LnrLbsAggConfig::default(),
            driver,
        );
        let male_agg = Aggregate::count_where(Selection::TextEquals {
            attr: attrs::GENDER.to_string(),
            value: "male".to_string(),
        });
        let male_est = run_lnr(
            &service,
            &region,
            &male_agg,
            scale.lnr_budget(),
            seed + 19,
            LnrLbsAggConfig::default(),
            driver,
        );
        result.add_engine(&count_est.engine);
        result.add_engine(&male_est.engine);
        let ratio_est = if count_est.value > 0.0 {
            100.0 * male_est.value / count_est.value
        } else {
            0.0
        };
        let ratio_truth = 100.0 * male_truth / count_truth;
        result.push(
            Row::new()
                .with("LBS", name)
                .with("aggregate", "COUNT(users)")
                .with_f64("estimate", count_est.value)
                .with_f64("ground truth", count_truth)
                .with(
                    "rel error",
                    format!("{:.3}", count_est.relative_error(count_truth)),
                )
                .with("budget", count_est.query_cost),
        );
        result.push(
            Row::new()
                .with("LBS", name)
                .with("aggregate", "male users (%)")
                .with_f64("estimate", ratio_est)
                .with_f64("ground truth", ratio_truth)
                .with(
                    "rel error",
                    format!(
                        "{:.3}",
                        (ratio_est - ratio_truth).abs() / ratio_truth.max(1e-9)
                    ),
                )
                .with("budget", male_est.query_cost),
        );
    };
    let wechat = ScenarioBuilder::wechat_users(scale.user_count()).build(&mut rng);
    user_rows("WeChat-like", wechat, 10);
    let weibo = ScenarioBuilder::weibo_users(scale.user_count()).build(&mut rng);
    user_rows("Weibo-like", weibo, 10);

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test every experiment at tiny scale: it must run, produce rows
    /// and render.
    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        for id in all_experiment_ids() {
            let result = run_experiment(id, Scale::Tiny, 42);
            assert_eq!(result.id, id);
            assert!(!result.rows.is_empty(), "{id} produced no rows");
            assert!(!result.to_table().is_empty());
            assert!(result.to_csv().contains('\n'));
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_experiment_panics() {
        let _ = run_experiment("fig99", Scale::Tiny, 1);
    }

    #[test]
    fn fig11_reports_heavy_tailed_cells() {
        let res = fig11_voronoi_decomposition(Scale::Tiny, 7);
        let spread_row = res
            .rows
            .iter()
            .find(|r| r.get("statistic") == Some("max/p10 spread"))
            .expect("spread row present");
        let spread: f64 = spread_row.get("cell area km^2").unwrap().parse().unwrap();
        assert!(
            spread > 3.0,
            "urban/rural spread should be pronounced, got {spread}"
        );
    }

    #[test]
    fn experiments_are_bit_identical_across_thread_counts() {
        // The acceptance gate of the parallel driver at the harness level:
        // the same experiment, seed and scale must render byte-identical CSV
        // whether the samples ran on 1 thread or on 8.
        for id in ["fig12", "fig20"] {
            let serial = run_experiment_threaded(id, Scale::Micro, 2015, 1);
            let parallel = run_experiment_threaded(id, Scale::Micro, 2015, 8);
            assert_eq!(
                serial.to_csv(),
                parallel.to_csv(),
                "{id} differs between 1 and 8 threads"
            );
        }
    }

    #[test]
    fn fig20_full_config_beats_plain_baseline() {
        let res = fig20_error_reduction_ablation(Scale::Tiny, 3, &SampleDriver::serial());
        let err_of = |variant: &str| -> f64 {
            res.rows
                .iter()
                .find(|r| r.get("variant") == Some(variant))
                .and_then(|r| r.get("rel error"))
                .unwrap()
                .parse()
                .unwrap()
        };
        let samples_of = |variant: &str| -> f64 {
            res.rows
                .iter()
                .find(|r| r.get("variant") == Some(variant))
                .and_then(|r| r.get("samples within budget"))
                .unwrap()
                .parse()
                .unwrap()
        };
        // The full configuration must fit at least as many samples into the
        // budget as the plain baseline (that is what the techniques buy).
        assert!(samples_of("LR-LBS-AGG-4") >= samples_of("LR-LBS-AGG-0"));
        // And its error should not be dramatically worse.
        assert!(err_of("LR-LBS-AGG-4") <= err_of("LR-LBS-AGG-0") + 0.25);
    }
}
