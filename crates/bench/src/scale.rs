//! Experiment scale presets.
//!
//! The paper's experiments run against hundreds of thousands of
//! OpenStreetMap POIs with query budgets in the tens of thousands. The
//! simulator can do the same, but that is hours of compute; the harness
//! therefore exposes three presets. All experiments accept a [`Scale`] and
//! derive their dataset sizes and budgets from it, so the same code path is
//! exercised at every scale.

use serde::{Deserialize, Serialize};

/// How big an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Micro scale used by the Criterion benches: fractions of a second per
    /// experiment, so that `cargo bench` covers every figure quickly.
    Micro,
    /// Smoke-test scale: seconds per experiment. Used by the harness's own
    /// tests.
    Tiny,
    /// Default scale for `repro`: a few minutes for the full suite, large
    /// enough for the paper's qualitative conclusions to be visible.
    Small,
    /// Close to the paper's set-up (hundreds of thousands of tuples,
    /// 10⁴-query budgets). Expect long runtimes.
    Paper,
}

impl Scale {
    /// Parses a scale name (`micro`, `tiny`, `small`, `paper`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "micro" => Some(Scale::Micro),
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of POIs in the synthetic USA dataset.
    pub fn poi_count(&self) -> usize {
        match self {
            Scale::Micro => 120,
            Scale::Tiny => 250,
            Scale::Small => 1_500,
            Scale::Paper => 120_000,
        }
    }

    /// Number of users in the synthetic WeChat / Weibo datasets.
    pub fn user_count(&self) -> usize {
        match self {
            Scale::Micro => 120,
            Scale::Tiny => 250,
            Scale::Small => 1_500,
            Scale::Paper => 200_000,
        }
    }

    /// Query budget for LR-LBS experiments.
    pub fn lr_budget(&self) -> u64 {
        match self {
            Scale::Micro => 250,
            Scale::Tiny => 600,
            Scale::Small => 4_000,
            Scale::Paper => 25_000,
        }
    }

    /// Query budget for LNR-LBS experiments (each sample is far more
    /// expensive, mirroring the paper's higher LNR costs).
    pub fn lnr_budget(&self) -> u64 {
        match self {
            Scale::Micro => 500,
            Scale::Tiny => 1_200,
            Scale::Small => 8_000,
            Scale::Paper => 40_000,
        }
    }

    /// Number of independent repetitions per configuration.
    pub fn repetitions(&self) -> usize {
        match self {
            Scale::Micro => 1,
            Scale::Tiny => 2,
            Scale::Small => 3,
            Scale::Paper => 10,
        }
    }

    /// Number of tuples to localise in the Figure 21 experiment.
    pub fn localization_targets(&self) -> usize {
        match self {
            Scale::Micro => 6,
            Scale::Tiny => 15,
            Scale::Small => 60,
            Scale::Paper => 200,
        }
    }

    /// The query-budget ladder used by the cost-versus-error figures.
    pub fn budget_ladder(&self) -> Vec<u64> {
        let base = self.lr_budget();
        vec![base / 8, base / 4, base / 2, base]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn sizes_are_monotone() {
        assert!(Scale::Tiny.poi_count() < Scale::Small.poi_count());
        assert!(Scale::Small.poi_count() < Scale::Paper.poi_count());
        assert!(Scale::Tiny.lr_budget() < Scale::Paper.lr_budget());
        assert!(Scale::Tiny.lnr_budget() > Scale::Tiny.lr_budget() / 2);
        assert_eq!(Scale::Tiny.budget_ladder().len(), 4);
    }
}
