//! Offline, API-compatible subset of `serde_json`.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back. Covers the entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Match serde_json's "1.0" rendering for integral floats.
            out.push_str(&format!("{n:.1}"));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::custom(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                Error::custom(format!("bad codepoint at byte {}", self.pos))
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "bad escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u64);
        m.insert("y".to_string(), 2);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"x\":1,\"y\":2}");
        assert_eq!(from_str::<BTreeMap<String, u64>>(&s).unwrap(), m);
    }

    #[test]
    fn nested_and_pretty() {
        let v = vec![vec![1u64], vec![], vec![2, 3]];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1],[],[2,3]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
