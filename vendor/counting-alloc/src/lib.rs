//! A counting wrapper around the system allocator.
//!
//! Install it as the `#[global_allocator]` of a binary and every heap
//! allocation bumps a relaxed atomic counter. The workspace's `repro`
//! binary uses it for the `--alloc-smoke` gate: build a batch of cells with
//! a cold scratch arena, then a batch with the warm arena, and require the
//! steady-state allocations-per-cell delta to stay within the committed
//! budget. Deallocations and reallocations are deliberately not counted —
//! the gate cares about allocator round-trips entered per cell, and `alloc`
//! alone is a faithful, monotone proxy for that.
//!
//! The counter uses `Ordering::Relaxed`: it is telemetry read after the
//! measured section completes on the same thread, never a synchronization
//! edge, so the cheapest ordering is also a correct one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that forwards to [`System`] and counts `alloc` calls.
pub struct CountingAlloc {
    count: AtomicU64,
}

impl CountingAlloc {
    /// A new allocator with a zeroed counter (const, so it can be the
    /// initializer of a `#[global_allocator]` static).
    pub const fn new() -> Self {
        CountingAlloc {
            count: AtomicU64::new(0),
        }
    }

    /// Total `alloc`/`alloc_zeroed` calls served since process start.
    pub fn allocation_count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves is still one allocator round-trip, not two;
        // growth inside a reused scratch buffer amortizes to zero of them,
        // which is exactly the signal the smoke gate wants to see.
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_alloc_calls() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let q = a.alloc_zeroed(layout);
            assert!(!q.is_null());
            a.dealloc(q, layout);
        }
        assert_eq!(a.allocation_count(), 2);
    }
}
