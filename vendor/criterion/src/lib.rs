//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the benchmark-harness surface the workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`criterion_group!`],
//! [`criterion_main!`] — as a plain wall-clock timing loop. There is no
//! statistical analysis, outlier detection, or HTML report; each benchmark
//! prints its mean iteration time to stdout. Swapping upstream criterion
//! back in requires no source changes in the benches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` (upstream deprecated
/// it in favour of `std::hint::black_box`, which it also forwards to).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub performs no hypothesis test.
    pub fn significance_level(self, _sl: f64) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub performs no comparison.
    pub fn noise_threshold(self, _threshold: f64) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub takes no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Sets the default warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the default measurement duration cap.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_bench(&id.into(), sample_size, warm_up, measurement, f);
        self
    }

    /// Upstream prints a summary here; the stub prints per-bench lines only.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (no-op in the stub; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measuring: bool,
}

impl Bencher {
    /// Runs `routine` once per invocation, accumulating elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        if self.measuring {
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_bench<F>(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run un-timed until the warm-up budget is spent.
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        measuring: false,
    };
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }

    // Measurement: up to `sample_size` timed samples within the time cap.
    b.measuring = true;
    let measure_start = Instant::now();
    while (b.iters as usize) < sample_size && measure_start.elapsed() < measurement {
        f(&mut b);
    }

    let mean = if b.iters > 0 {
        b.total / u32::try_from(b.iters).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!("{id:<40} time: {mean:>12.3?}  (samples: {})", b.iters);
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 10);
    }
}
