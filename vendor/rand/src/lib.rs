//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand`'s surface that the code
//! base actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`,
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator.
//!
//! Streams are deterministic for a given seed but are **not** bit-compatible
//! with upstream `rand` (upstream `StdRng` is ChaCha12). Nothing in this
//! repository depends on upstream's exact streams — only on seeded
//! reproducibility — so the substitution is behaviourally transparent.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled from the "standard" distribution
/// (`Rng::gen`): uniform over `[0, 1)` for floats, uniform over the whole
/// domain for integers and `bool`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types over which `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let v = lo + (hi - lo) * f64::sample_standard(rng);
        // `lo + (hi-lo) * f` can round up to exactly `hi` even for f < 1;
        // keep the half-open contract of `Range<f64>` like upstream rand.
        if !inclusive && v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let v = lo + (hi - lo) * f32::sample_standard(rng);
        if !inclusive && v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    (hi as i128 - lo as i128) as u128
                };
                assert!(span > 0, "cannot sample empty range");
                // Modulo reduction; bias is < 2^-64 * span, irrelevant here.
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 exactly
    /// like upstream rand's default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k: usize = rng.gen_range(1..20);
            assert!((1..20).contains(&k));
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let j = rng.gen_range(0..=3);
            assert!((0..=3).contains(&j));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
