//! Offline subset of `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for non-generic structs and enums.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone — no `syn`/`quote`. It parses just enough of
//! the item grammar to recover the type name, the struct fields, or the enum
//! variants, then emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (which are `Value`-tree based, far simpler
//! than upstream's visitor machinery).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation).
//!
//! Unsupported (fails with a compile error rather than silently
//! mis-serializing): generic parameters and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_str(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attribute sequences starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_str(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances to the token after the next top-level `,`, treating `<...>` as
/// nested (type arguments contain commas). Returns `tokens.len()` if no
/// separator remains.
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                // `->` never appears in field position; `<`/`>` outside an
                // operator context here are generic brackets.
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth = angle_depth.saturating_sub(1);
                } else if c == ',' && angle_depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        let name = ident_str(&tokens[i]).ok_or_else(|| {
            format!("serde_derive stub: expected field name, found `{}`", tokens[i])
        })?;
        i += 1;
        if i >= tokens.len() || !is_punct(&tokens[i], ':') {
            return Err(format!("serde_derive stub: expected `:` after field `{name}`"));
        }
        names.push(name);
        i = skip_past_comma(&tokens, i + 1);
    }
    Ok(names)
}

fn count_tuple_fields(group: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_past_comma(&tokens, i);
    }
    count
}

fn parse_variants(group: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_str(&tokens[i]).ok_or_else(|| {
            format!("serde_derive stub: expected variant name, found `{}`", tokens[i])
        })?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        i = skip_past_comma(&tokens, i);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = ident_str(tokens.get(i).ok_or("serde_derive stub: empty input")?)
        .ok_or("serde_derive stub: expected `struct` or `enum`")?;
    if kind != "struct" && kind != "enum" {
        return Err(format!("serde_derive stub: cannot derive for `{kind}` items"));
    }
    i += 1;

    let name = ident_str(tokens.get(i).ok_or("serde_derive stub: missing type name")?)
        .ok_or("serde_derive stub: missing type name")?;
    i += 1;

    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is not supported; \
             write the impls by hand or drop the derive"
        ));
    }

    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(&g.stream())?,
            }),
            _ => Err(format!("serde_derive stub: malformed enum `{name}`")),
        }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(t) if is_punct(t, ';') => Fields::Unit,
            None => Fields::Unit,
            _ => return Err(format!("serde_derive stub: malformed struct `{name}`")),
        };
        Ok(Item::Struct { name, fields })
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn map_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| map_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![{}]),",
                            map_entry(vname, "::serde::Serialize::to_value(f0)")
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![{}]),",
                                binders.join(", "),
                                map_entry(
                                    vname,
                                    &format!(
                                        "::serde::Value::Seq(::std::vec![{}])",
                                        items.join(", ")
                                    )
                                )
                            )
                        }
                        Fields::Named(field_names) => {
                            let entries: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    map_entry(f, &format!("::serde::Serialize::to_value({f})"))
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![{}]),",
                                field_names.join(", "),
                                map_entry(
                                    vname,
                                    &format!(
                                        "::serde::Value::Map(::std::vec![{}])",
                                        entries.join(", ")
                                    )
                                )
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__private::field(value, \"{name}\", \"{f}\")?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::__private::element(items, \"{name}\", {k})?"))
                        .collect();
                    format!(
                        "match value {{ \
                             ::serde::Value::Seq(items) => \
                                 ::std::result::Result::Ok({name}({})), \
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}: expected sequence\")), \
                         }}",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "\"{vname}\" => return ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::__private::element(items, \"{name}\", {k})?")
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => match inner {{ \
                                 ::serde::Value::Seq(items) => \
                                     return ::std::result::Result::Ok({name}::{vname}({})), \
                                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"{name}::{vname}: expected sequence\")), \
                             }},",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__private::field(inner, \"{name}\", \"{f}\")?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => return ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "if let ::serde::Value::Str(tag) = value {{ \
                     match tag.as_str() {{ {} _ => {{}} }} \
                 }} \
                 if let ::serde::Value::Map(entries) = value {{ \
                     if entries.len() == 1 {{ \
                         let (tag, inner) = &entries[0]; \
                         match tag.as_str() {{ {} _ => {{}} }} \
                     }} \
                 }} \
                 ::std::result::Result::Err(::serde::Error::custom(\
                     \"{name}: unrecognised enum encoding\"))",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::std::compile_error!({msg:?});"),
    };
    generated
        .parse()
        .expect("serde_derive stub produced invalid Rust; this is a bug in the stub")
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
