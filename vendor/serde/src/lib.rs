//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the slice of serde's surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits, their derive macros (from the
//! sibling `serde_derive` stub), and a self-describing [`Value`] tree that
//! the vendored `serde_json` renders to and parses from.
//!
//! Unlike upstream serde there is no zero-copy visitor machinery: both
//! traits go through [`Value`]. Data models round-trip in the same
//! externally-tagged JSON shape upstream serde produces (structs as maps,
//! unit enum variants as strings, data-carrying variants as
//! single-key maps), so swapping upstream back in later is format-stable
//! for the types this workspace defines.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree: the meet-point of [`Serialize`] and
/// [`Deserialize`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys; insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of any of the number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn type_mismatch(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_mismatch("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_mismatch("string", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_mismatch("number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::U64(v) => <$t>::try_from(v).ok(),
                    Value::I64(v) => <$t>::try_from(v).ok(),
                    Value::F64(v) if v.fract() == 0.0 => Some(v as $t),
                    _ => None,
                };
                out.ok_or_else(|| type_mismatch(stringify!($t), value))
            }
        }
    )*};
}
impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_mismatch("sequence", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(type_mismatch("2-tuple", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(type_mismatch("3-tuple", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(type_mismatch("map", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Support machinery referenced by `serde_derive`-generated code.
///
/// Kept in one module so generated code only needs the `::serde::__private`
/// path, mirroring how upstream derive references `_serde::__private`.
pub mod __private {
    pub use super::{Deserialize, Error, Serialize, Value};

    /// Fetches a struct field, failing with a readable message.
    ///
    /// A missing key deserializes as [`Value::Null`], mirroring upstream
    /// serde's treatment of absent `Option` fields (they become `None`);
    /// any other type still fails, with the missing-field message.
    pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(inner) => T::from_value(inner),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("{ty}: missing field `{name}`"))),
        }
    }

    /// Fetches the `idx`-th element of a sequence.
    pub fn element<T: Deserialize>(v: &[Value], ty: &str, idx: usize) -> Result<T, Error> {
        match v.get(idx) {
            Some(inner) => T::from_value(inner),
            None => Err(Error::custom(format!("{ty}: missing tuple element {idx}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        m.insert("b".to_string(), 2.5);
        let back = BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }
}
