//! Offline, API-compatible subset of the `polling` 3.x crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the slice of `polling`'s surface that the event-
//! driven server core (`lbs-server`) actually uses:
//!
//! * [`Poller`] with `new`, `add`, `modify`, `delete`, `wait`, `notify`,
//! * [`Event`] readiness descriptors and the [`Events`] buffer.
//!
//! Upstream `polling` selects the best OS backend (epoll on Linux, kqueue on
//! BSD, IOCP on Windows). This vendored subset implements exactly one
//! backend — **`poll(2)`** over a raw C FFI — which is portable across Unix
//! and entirely dependency-free (the symbols come from the libc that `std`
//! already links). `poll(2)` is O(watched fds) per wake-up where epoll is
//! O(ready fds); for the few hundred connections this repository's serving
//! layer targets in tests and CI the difference is immaterial, and dropping
//! the `path` key in the workspace manifest restores upstream's epoll
//! backend unchanged.
//!
//! Semantics match upstream where it matters to callers:
//!
//! * **Oneshot interest.** After [`Poller::wait`] delivers an event for a
//!   source, that source's interest is cleared; the caller must re-arm with
//!   [`Poller::modify`] before the next wait will watch it again. (The
//!   `lbs-server` event loop re-arms every live connection each pass.)
//! * **Level-triggered readiness.** A socket that is still readable when
//!   re-armed fires again immediately — no edges are lost across `wait`
//!   calls.
//! * **`notify` wakes `wait`.** [`Poller::notify`] makes a concurrent or
//!   future [`Poller::wait`] return early with zero events, via an internal
//!   self-pipe. Used by worker threads to hand results back to the loop.
//!
//! One deliberate API divergence: upstream 3.x marks `add` as `unsafe fn`
//! (the caller promises to `delete` the source before closing its fd). This
//! subset keeps `add` safe — a stale fd in the interest map yields a
//! `POLLNVAL` revent which `wait` silently discards and unregisters, so the
//! worst case of a forgotten `delete` is a wasted table slot, not UB.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Raw C bindings for the one syscall family this crate needs. The symbols
/// resolve against the platform libc that `std` links unconditionally.
mod sys {
    use core::ffi::{c_int, c_ulong, c_void};

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLPRI: i16 = 0x002;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub const F_SETFL: c_int = 4;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFD: c_int = 2;
    pub const FD_CLOEXEC: c_int = 1;
    /// Linux value; the only target this build environment supports.
    pub const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Interest in (or readiness of) a single source, tagged with a caller key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source (returned verbatim).
    pub key: usize,
    /// Interest in / readiness for reading.
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the source stays registered but unwatched).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Buffer that [`Poller::wait`] fills with ready [`Event`]s.
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events { list: Vec::new() }
    }

    /// Iterates over the events of the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Number of events delivered by the last `wait`.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` when the last `wait` delivered no events.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Discards all buffered events.
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

#[derive(Clone, Copy)]
struct Interest {
    key: usize,
    readable: bool,
    writable: bool,
}

/// A `poll(2)`-backed readiness monitor over non-blocking sources.
pub struct Poller {
    /// Registered sources: fd → armed interest. A `BTreeMap` so the pollfd
    /// array is rebuilt in deterministic fd order.
    sources: Mutex<BTreeMap<RawFd, Interest>>,
    /// Self-pipe read end, always watched; `notify` writes one byte to wake
    /// a blocked `wait`.
    notify_read: RawFd,
    /// Self-pipe write end.
    notify_write: RawFd,
}

impl Poller {
    /// Creates a poller with an armed notification pipe.
    pub fn new() -> io::Result<Poller> {
        let mut fds = [0 as core::ffi::c_int; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // Non-blocking (a full pipe must not block `notify`; draining
            // must not block `wait`) and close-on-exec.
            let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
            if flags < 0 || unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    sys::close(fds[0]);
                    sys::close(fds[1]);
                }
                return Err(err);
            }
            unsafe { sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) };
        }
        Ok(Poller {
            sources: Mutex::new(BTreeMap::new()),
            notify_read: fds[0],
            notify_write: fds[1],
        })
    }

    /// Registers a source with an initial interest. Errors with
    /// `AlreadyExists` if the source is already registered.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut sources = self.sources.lock().expect("poller sources lock");
        if sources.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        sources.insert(
            fd,
            Interest {
                key: interest.key,
                readable: interest.readable,
                writable: interest.writable,
            },
        );
        Ok(())
    }

    /// Re-arms a registered source with a new interest (the oneshot
    /// delivery model clears interest on every delivered event). Errors
    /// with `NotFound` for unregistered sources.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut sources = self.sources.lock().expect("poller sources lock");
        match sources.get_mut(&fd) {
            Some(slot) => {
                *slot = Interest {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                };
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Unregisters a source. Errors with `NotFound` for unregistered
    /// sources.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut sources = self.sources.lock().expect("poller sources lock");
        match sources.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Wakes a concurrent or future [`Poller::wait`], which returns early
    /// with zero events. Coalesces: multiple notifies before the next wait
    /// wake it once.
    pub fn notify(&self) -> io::Result<()> {
        let byte = 1u8;
        let ret = unsafe {
            sys::write(
                self.notify_write,
                (&byte as *const u8).cast(),
                1,
            )
        };
        if ret < 0 {
            let err = io::Error::last_os_error();
            // A full pipe means a wake-up is already pending — exactly the
            // coalescing `notify` promises.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Blocks until at least one armed source is ready, `notify` is called,
    /// or `timeout` elapses (`None` waits forever). Delivered sources have
    /// their interest cleared (oneshot); returns the number of events.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();

        // Snapshot the armed interests; the lock is NOT held across the
        // blocking poll so `notify`/`add`/`modify` from other threads can
        // never deadlock against a parked wait.
        let mut pollfds: Vec<sys::PollFd> = vec![sys::PollFd {
            fd: self.notify_read,
            events: sys::POLLIN,
            revents: 0,
        }];
        {
            let sources = self.sources.lock().expect("poller sources lock");
            for (&fd, interest) in sources.iter() {
                let mut mask = 0i16;
                if interest.readable {
                    mask |= sys::POLLIN | sys::POLLPRI;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                if mask != 0 {
                    pollfds.push(sys::PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                }
            }
        }

        let timeout_ms: core::ffi::c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                // Round sub-millisecond timeouts up so a 100µs wait does
                // not degenerate into a hot spin at timeout 0.
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                core::ffi::c_int::try_from(ms).unwrap_or(core::ffi::c_int::MAX)
            }
        };

        let ready = loop {
            let ret = unsafe {
                sys::poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as core::ffi::c_ulong,
                    timeout_ms,
                )
            };
            if ret >= 0 {
                break ret;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the original timeout. A signal can thus
            // stretch the total wait; callers here treat the timeout as a
            // housekeeping tick, not a hard deadline.
        };
        if ready == 0 {
            return Ok(0);
        }

        let mut sources = self.sources.lock().expect("poller sources lock");
        for pollfd in &pollfds {
            if pollfd.revents == 0 {
                continue;
            }
            if pollfd.fd == self.notify_read {
                // Drain the self-pipe; the early return with (possibly)
                // zero events IS the notification.
                let mut buf = [0u8; 64];
                loop {
                    let n = unsafe {
                        sys::read(self.notify_read, buf.as_mut_ptr().cast(), buf.len())
                    };
                    if n <= 0 {
                        break;
                    }
                }
                continue;
            }
            if pollfd.revents & sys::POLLNVAL != 0 {
                // The caller closed the fd without `delete`: unregister it
                // silently (see the module docs on the safe-`add`
                // divergence).
                sources.remove(&pollfd.fd);
                continue;
            }
            let Some(interest) = sources.get_mut(&pollfd.fd) else {
                continue; // deleted while we were polling
            };
            // Error/hang-up conditions are delivered on whichever
            // directions the caller armed, so the next read()/write()
            // observes the failure directly.
            let failed = pollfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            let readable =
                interest.readable && (pollfd.revents & (sys::POLLIN | sys::POLLPRI) != 0 || failed);
            let writable = interest.writable && (pollfd.revents & sys::POLLOUT != 0 || failed);
            if !readable && !writable {
                continue;
            }
            events.list.push(Event {
                key: interest.key,
                readable,
                writable,
            });
            // Oneshot: delivered sources disarm until the next `modify`.
            interest.readable = false;
            interest.writable = false;
        }
        Ok(events.list.len())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.notify_read);
            sys::close(self.notify_write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_and_oneshot_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing to read yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.key, 7);
        assert!(event.readable);

        // Oneshot: without a re-arm the still-readable socket stays silent.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        // Re-armed, it fires again (level-triggered readiness).
        poller.modify(&server, Event::readable(7)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        poller.delete(&server).unwrap();
        assert!(poller.delete(&server).is_err());
    }

    #[test]
    fn notify_wakes_wait_with_zero_events() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let started = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() < Duration::from_secs(5), "notify did not wake wait");
        handle.join().unwrap();
        // Coalesced: double-notify still wakes exactly once, and the drained
        // pipe leaves the next wait quiet.
        poller.notify().unwrap();
        poller.notify().unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(200)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn writable_interest_fires_on_an_unfilled_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&client, Event::all(3)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert!(event.writable, "fresh socket with empty send buffer must be writable");
    }
}
