/root/repo/vendor/polling/target/debug/deps/polling-2ae3c115d7549f7e.d: src/lib.rs

/root/repo/vendor/polling/target/debug/deps/polling-2ae3c115d7549f7e: src/lib.rs

src/lib.rs:
