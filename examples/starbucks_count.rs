//! The paper's flagship online demonstration (Table 1): estimate the number
//! of Starbucks cafés in the US by querying a Google-Places-like interface
//! with a pass-through keyword filter, and compare against the planted
//! ground truth.
//!
//! ```text
//! cargo run --release --example starbucks_count
//! ```

#![forbid(unsafe_code)]

use lbs::core::{Aggregate, LrLbsAgg, LrLbsAggConfig, Selection};
use lbs::data::{attrs, ScenarioBuilder};
use lbs::service::{PassThroughFilter, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 2 000 POIs, 60 of which are planted "Starbucks" cafés.
    let dataset = ScenarioBuilder::usa_pois(2_000)
        .with_starbucks(60)
        .build(&mut rng);
    let region = dataset.bbox();
    let truth = dataset.count_where(|t| t.text_eq(attrs::BRAND, "Starbucks")) as f64;

    // Google Places supports keyword filters, so the selection condition can
    // be passed through: the filtered view answers "k nearest Starbucks".
    let google = SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(10));
    let starbucks_view = google.filtered(&PassThroughFilter::equals(attrs::BRAND, "Starbucks"));

    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let estimate = estimator
        .estimate(
            &starbucks_view,
            &region,
            &Aggregate::count_all(),
            2_500,
            &mut rng,
        )
        .expect("estimation succeeds");

    println!("COUNT(Starbucks in US)");
    println!("  estimate     : {:.0}", estimate.value);
    println!("  ground truth : {truth:.0}");
    println!(
        "  rel. error   : {:.1}%",
        100.0 * estimate.relative_error(truth)
    );
    println!("  query cost   : {}", estimate.query_cost);

    // The same machinery also answers selection conditions the service does
    // NOT support (post-processed): restaurants with a rating of at least 4
    // that are open on Sundays.
    let fancy_open_sunday = Aggregate::count_where(Selection::And(vec![
        Selection::TextEquals {
            attr: attrs::CATEGORY.into(),
            value: "restaurant".into(),
        },
        Selection::AtLeast {
            attr: attrs::RATING.into(),
            min: 4.0,
        },
        Selection::Flag {
            attr: attrs::OPEN_SUNDAY.into(),
            expected: true,
        },
    ]));
    let truth2 = fancy_open_sunday.ground_truth(&dataset, &region);
    let estimate2 = estimator
        .estimate(&google, &region, &fancy_open_sunday, 2_500, &mut rng)
        .expect("estimation succeeds");
    println!("\nCOUNT(restaurants rated ≥ 4.0 and open on Sundays)");
    println!("  estimate     : {:.0}", estimate2.value);
    println!("  ground truth : {truth2:.0}");
    println!(
        "  rel. error   : {:.1}%",
        100.0 * estimate2.relative_error(truth2)
    );
    println!("  query cost   : {}", estimate2.query_cost);
}
