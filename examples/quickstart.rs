//! Quickstart: estimate how many tuples a hidden LBS database holds by only
//! talking to its kNN interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use lbs::core::{Aggregate, LnrLbsAgg, LnrLbsAggConfig, LrLbsAgg, LrLbsAggConfig};
use lbs::data::ScenarioBuilder;
use lbs::service::{LbsBackend, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A synthetic "hidden database": 1 200 points of interest spread over a
    // USA-sized plane with urban clustering.
    let dataset = ScenarioBuilder::usa_pois(1_200).build(&mut rng);
    let region = dataset.bbox();
    let truth = dataset.len() as f64;
    println!(
        "hidden database: {truth} POIs over {:.0} km²",
        region.area()
    );

    // 1) A Google-Maps-like interface: top-10 nearest tuples, locations
    //    returned. LR-LBS-AGG computes exact Voronoi cells and is unbiased.
    let lr_service = SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(10));
    let mut lr = LrLbsAgg::new(LrLbsAggConfig::default());
    let estimate = lr
        .estimate(
            &lr_service,
            &region,
            &Aggregate::count_all(),
            2_000,
            &mut rng,
        )
        .expect("estimation succeeds");
    println!(
        "LR-LBS-AGG : COUNT(*) ≈ {:.0}  (95% CI {:.0}..{:.0}, {} queries, rel err {:.1}%)",
        estimate.value,
        estimate.ci95.0,
        estimate.ci95.1,
        estimate.query_cost,
        100.0 * estimate.relative_error(truth)
    );

    // 2) A WeChat-like interface: same database, but only ranked ids are
    //    returned. LNR-LBS-AGG infers Voronoi cells from ranks alone.
    let lnr_service = SimulatedLbs::new(dataset, ServiceConfig::lnr_lbs(10));
    let mut lnr = LnrLbsAgg::new(LnrLbsAggConfig {
        delta: 1.0, // km; coarser edges keep the demo fast
        ..LnrLbsAggConfig::default()
    });
    let estimate = lnr
        .estimate(
            &lnr_service,
            &region,
            &Aggregate::count_all(),
            4_000,
            &mut rng,
        )
        .expect("estimation succeeds");
    println!(
        "LNR-LBS-AGG: COUNT(*) ≈ {:.0}  ({} queries, rel err {:.1}%)",
        estimate.value,
        estimate.query_cost,
        100.0 * estimate.relative_error(truth)
    );
    println!(
        "(the service answered {} kNN queries in total)",
        lnr_service.queries_issued()
    );
}
