//! Tuple-position inference (paper §4.3, Figure 21): pin down the location of
//! a user through an interface that never returns coordinates, and see how
//! location obfuscation bounds the achievable accuracy.
//!
//! ```text
//! cargo run --release --example locate_hidden_user
//! ```

#![forbid(unsafe_code)]

use lbs::core::lnr::cell::{explore_cell, LnrExploreConfig};
use lbs::core::lnr::locate::{infer_position, LocateConfig};
use lbs::core::lnr::RankOracle;
use lbs::data::ScenarioBuilder;
use lbs::geom::Rect;
use lbs::service::{LbsBackend, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(label: &str, obfuscation: Option<f64>, targets: usize) {
    let mut rng = StdRng::seed_from_u64(5);
    let region = Rect::from_bounds(0.0, 0.0, 300.0, 300.0);
    let users = ScenarioBuilder::uniform_points(400, region).build(&mut rng);

    let mut config = ServiceConfig::lnr_lbs(10);
    if let Some(grid) = obfuscation {
        config = config.with_obfuscation(grid);
    }
    let service = SimulatedLbs::new(users.clone(), config);

    let explore_cfg = LnrExploreConfig {
        delta: 0.02,
        delta_prime: 0.2,
        ..LnrExploreConfig::default()
    };
    let locate_cfg = LocateConfig::default();

    let mut located = 0usize;
    let mut within_100m = 0usize;
    let mut error_sum = 0.0;
    for tuple in users.tuples().iter().take(targets) {
        let mut oracle = RankOracle::new(&service, 1);
        let Ok(cell) = explore_cell(&mut oracle, tuple.id, tuple.location, &region, &explore_cfg)
        else {
            continue;
        };
        if let Ok(Some(inferred)) =
            infer_position(&mut oracle, tuple.id, &cell, &region, &locate_cfg)
        {
            let error = inferred.distance(&tuple.location);
            located += 1;
            error_sum += error;
            if error <= 0.1 {
                within_100m += 1;
            }
        }
    }
    println!("{label}");
    println!("  targets            : {targets}");
    println!("  located            : {located}");
    println!("  within 100 m       : {within_100m}");
    if located > 0 {
        println!(
            "  mean error         : {:.0} m",
            1000.0 * error_sum / located as f64
        );
    }
    println!("  queries spent      : {}", service.queries_issued());
}

fn main() {
    println!("Position inference through a rank-only kNN interface\n");
    run(
        "No obfuscation (Google-Places-like, treated as LNR)",
        None,
        15,
    );
    println!();
    run("50 m obfuscation (WeChat-like)", Some(0.05), 15);
    println!();
    println!("With obfuscation the service ranks users by snapped positions, so the");
    println!("inferred location converges to the snapped point — the residual error is");
    println!("bounded by the obfuscation grid, exactly the effect in the paper's Fig. 21.");
}
