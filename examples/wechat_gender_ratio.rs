//! The paper's LNR-LBS demonstration (Table 1): estimate the number of users
//! and the male/female ratio of a WeChat-like social network whose "people
//! nearby" interface returns only ranked user ids — no coordinates.
//!
//! ```text
//! cargo run --release --example wechat_gender_ratio
//! ```

#![forbid(unsafe_code)]

use lbs::core::{Aggregate, LnrLbsAgg, LnrLbsAggConfig, Selection};
use lbs::data::{attrs, ScenarioBuilder};
use lbs::service::{ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);

    // A WeChat-like user base over a China-sized plane (~67% male, matching
    // the ratio the paper estimated).
    let users = ScenarioBuilder::wechat_users(1_500).build(&mut rng);
    let region = users.bbox();
    let count_truth = users.len() as f64;
    let male_truth = users.count_where(|t| t.text_eq(attrs::GENDER, "male")) as f64;

    // Rank-only interface: top-10 nearby users, 50 m location obfuscation.
    let wechat = SimulatedLbs::new(users, ServiceConfig::lnr_lbs(10).with_obfuscation(0.05));

    let config = LnrLbsAggConfig {
        delta: 1.0, // km; the aggregate does not need fine cell edges
        ..LnrLbsAggConfig::default()
    };

    let mut estimator = LnrLbsAgg::new(config.clone());
    let count = estimator
        .estimate(&wechat, &region, &Aggregate::count_all(), 5_000, &mut rng)
        .expect("estimation succeeds");

    let male_agg = Aggregate::count_where(Selection::TextEquals {
        attr: attrs::GENDER.into(),
        value: "male".into(),
    });
    let mut estimator = LnrLbsAgg::new(config);
    let male = estimator
        .estimate(&wechat, &region, &male_agg, 5_000, &mut rng)
        .expect("estimation succeeds");

    let ratio = 100.0 * male.value / count.value.max(1.0);
    let ratio_truth = 100.0 * male_truth / count_truth;

    println!("WeChat-like LNR interface (rank-only answers)");
    println!(
        "  COUNT(users)     : estimate {:.0}   truth {count_truth:.0}   rel err {:.1}%",
        count.value,
        100.0 * count.relative_error(count_truth)
    );
    println!(
        "  male users       : estimate {:.0}   truth {male_truth:.0}",
        male.value
    );
    println!(
        "  gender ratio     : estimate {ratio:.1} : {:.1}   truth {ratio_truth:.1} : {:.1}",
        100.0 - ratio,
        100.0 - ratio_truth
    );
    println!(
        "  total query cost : {}",
        count.query_cost + male.query_cost
    );
}
