//! # lbs — Aggregate estimations over location based services
//!
//! Facade crate for the reproduction of *Aggregate Estimations over Location
//! Based Services* (Liu et al., PVLDB 8(10), 2015). It re-exports the
//! workspace crates under one roof so that applications (and the examples in
//! `examples/`) can depend on a single crate:
//!
//! * [`geom`] — computational geometry (Voronoi cells, top-k Voronoi cells).
//! * [`index`] — exact kNN spatial indexes.
//! * [`data`] — dataset model, synthetic POI/user generators, density grid.
//! * [`service`] — LR-LBS / LNR-LBS query-interface simulators.
//! * [`core`] — the paper's estimators: `LrLbsAgg`, `LnrLbsAgg`, the
//!   `NnoBaseline`, aggregates and statistics.
//!
//! ## Quickstart
//!
//! ```
//! use lbs::data::{generators::ScenarioBuilder, region};
//! use lbs::service::{LbsBackend, ServiceConfig, SimulatedLbs};
//! use lbs::core::{Aggregate, LrLbsAgg, LrLbsAggConfig};
//! use rand::SeedableRng;
//!
//! // 1. Generate a small synthetic POI database.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dataset = ScenarioBuilder::usa_pois(500).build(&mut rng);
//! let bbox = region::usa();
//!
//! // 2. Stand up a Google-Places-like LR-LBS interface over it.
//! let service = SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(10));
//!
//! // 3. Estimate COUNT(*) with a small query budget.
//! let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
//! let estimate = estimator
//!     .estimate(&service, &bbox, &Aggregate::count_all(), 300, &mut rng)
//!     .unwrap();
//!
//! let truth = dataset.len() as f64;
//! let rel_err = (estimate.value - truth).abs() / truth;
//! assert!(rel_err < 1.0, "estimate should be in the right ballpark");
//! ```
//!
//! ## Parallel estimation
//!
//! Every estimator also offers `estimate_parallel`, which fans samples
//! across worker threads through [`core::driver::SampleDriver`] with
//! bit-identical results at any thread count — see `ARCHITECTURE.md` for
//! the design and `repro --threads N` for the experiment harness hook.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lbs_core as core;
pub use lbs_data as data;
pub use lbs_geom as geom;
pub use lbs_index as index;
pub use lbs_service as service;
